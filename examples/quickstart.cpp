// Quickstart: run one NPB-like benchmark (SP) under the four mappings the
// paper compares — OS scheduler, random, oracle, SPCD — and print the
// headline metrics. This exercises the whole public API in ~50 lines:
// machine specs, the runner pipeline, and the detected communication
// matrix.
//
// Usage: quickstart [benchmark] [repetitions]
//   benchmark: bt cg dc ep ft is lu mg sp ua (default sp)
//   repetitions: default 3 (the paper uses 10)
#include <cstdio>
#include <string>

#include "core/runner.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"
#include "workloads/npb.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace spcd;

  const std::string bench = argc > 1 ? argv[1] : "sp";
  const std::uint32_t reps =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 3;

  core::RunnerConfig config;
  config.repetitions = reps;
  core::Runner runner(config);
  const auto factory = workloads::nas_factory(bench);

  std::printf("SPCD quickstart: %s on %s, %u repetition(s) per mapping\n\n",
              bench.c_str(), config.machine.name.c_str(), reps);

  util::TextTable table;
  table.header({"mapping", "time [ms]", "L2 MPKI", "L3 MPKI", "c2c [k]",
                "pkg [J]", "DRAM [J]", "migrations"});

  std::vector<core::RunMetrics> baseline;
  std::shared_ptr<const core::CommMatrix> spcd_matrix;
  for (const auto policy :
       {core::MappingPolicy::kOs, core::MappingPolicy::kRandom,
        core::MappingPolicy::kOracle, core::MappingPolicy::kSpcd}) {
    const auto runs = runner.run_policy(bench, factory, policy);
    if (policy == core::MappingPolicy::kOs) baseline = runs;
    if (policy == core::MappingPolicy::kSpcd && !runs.empty()) {
      spcd_matrix = runs.back().spcd_matrix;
    }

    const auto time = core::aggregate(
        runs, [](const core::RunMetrics& m) { return m.exec_seconds; });
    const auto l2 = core::aggregate(
        runs, [](const core::RunMetrics& m) { return m.l2_mpki; });
    const auto l3 = core::aggregate(
        runs, [](const core::RunMetrics& m) { return m.l3_mpki; });
    const auto c2c = core::aggregate(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.c2c_transactions);
    });
    const auto pkg = core::aggregate(
        runs, [](const core::RunMetrics& m) { return m.package_joules; });
    const auto dram = core::aggregate(
        runs, [](const core::RunMetrics& m) { return m.dram_joules; });
    const auto mig = core::aggregate(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.migration_events);
    });

    table.row({core::to_string(policy),
               util::fmt_mean_ci(time.mean * 1e3, time.ci95 * 1e3, 2),
               util::fmt_double(l2.mean, 2), util::fmt_double(l3.mean, 2),
               util::fmt_double(c2c.mean / 1e3, 0),
               util::fmt_double(pkg.mean, 3), util::fmt_double(dram.mean, 3),
               util::fmt_double(mig.mean, 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  if (spcd_matrix) {
    std::printf("\nCommunication matrix detected by SPCD (last run):\n%s",
                util::render_heatmap(spcd_matrix->as_double(),
                                     spcd_matrix->size())
                    .c_str());
    if (const core::CommMatrix* oracle = runner.oracle_matrix(bench)) {
      std::printf("\nPattern accuracy vs. oracle (Pearson): %.3f\n",
                  spcd_matrix->correlation(*oracle));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const spcd::core::ConfigError& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());  // e.g. unknown benchmark name
    return 2;
  }
}
