// Calibration report: run every NAS-like benchmark once under the OS
// mapping and once under SPCD, and print the metrics next to the paper's
// Table II values. Used to sanity-check that the synthetic kernels land in
// the right regime (MPKI magnitudes, overhead percentages, injected-fault
// ratio) before running the full figure harnesses.
//
// Usage: calibration_report [benchmark ...]   (default: all ten)
#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "util/table.hpp"
#include "workloads/npb.hpp"

namespace {

struct PaperRow {
  const char* name;
  double l2_mpki;  // Table II (SPCD column)
  double l3_mpki;
  double time_delta_pct;  // SPCD vs OS
};

constexpr PaperRow kPaper[] = {
    {"bt", 2.44, 0.20, -8.8}, {"cg", 16.27, 0.24, -7.8},
    {"dc", 17.39, 9.46, -3.6}, {"ep", 0.16, 0.02, +4.6},
    {"ft", 16.82, 0.93, +2.4}, {"is", 4.86, 2.36, +2.6},
    {"lu", 3.60, 0.52, -8.1},  {"mg", 9.48, 2.13, +0.3},
    {"sp", 9.42, 0.58, -16.7}, {"ua", 4.03, 0.28, -8.2},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spcd;

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) {
    for (const auto& row : kPaper) names.emplace_back(row.name);
  }

  core::RunnerConfig config;
  config.repetitions = 1;
  core::Runner runner(config);

  util::TextTable table;
  table.header({"bench", "os[ms]", "oracle", "spcd", "d-spcd", "(paper)",
                "d-orac", "L2 MPKI", "(paper)", "L3 MPKI", "(paper)",
                "inj%", "det%", "map%", "mig"});

  for (const auto& name : names) {
    const auto factory = workloads::nas_factory(name);
    const auto os = runner.run_once(name, factory, core::MappingPolicy::kOs, 0);
    const auto orc =
        runner.run_once(name, factory, core::MappingPolicy::kOracle, 0);
    const auto sp =
        runner.run_once(name, factory, core::MappingPolicy::kSpcd, 0);

    const PaperRow* paper = nullptr;
    for (const auto& row : kPaper) {
      if (name == row.name) paper = &row;
    }

    table.row({name, util::fmt_double(os.exec_seconds * 1e3, 2),
               util::fmt_double(orc.exec_seconds * 1e3, 2),
               util::fmt_double(sp.exec_seconds * 1e3, 2),
               util::fmt_percent_delta(sp.exec_seconds / os.exec_seconds),
               paper ? util::fmt_double(paper->time_delta_pct, 1) + "%" : "?",
               util::fmt_percent_delta(orc.exec_seconds / os.exec_seconds),
               util::fmt_double(sp.l2_mpki, 2),
               paper ? util::fmt_double(paper->l2_mpki, 2) : "?",
               util::fmt_double(sp.l3_mpki, 2),
               paper ? util::fmt_double(paper->l3_mpki, 2) : "?",
               util::fmt_double(sp.injected_fault_ratio() * 100.0, 1),
               util::fmt_double(sp.detection_overhead * 100.0, 2),
               util::fmt_double(sp.mapping_overhead * 100.0, 2),
               std::to_string(sp.migration_events)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
