// spcdsim — command-line driver for the simulator: run any benchmark under
// any mapping with tweakable SPCD parameters, and print the full metric
// set. The "do one thing from the shell" entry point for exploring the
// system without writing code.
//
// Usage:
//   spcdsim [options]
//     --bench <bt|cg|dc|ep|ft|is|lu|mg|sp|ua|prodcons>   (default sp)
//     --policy <os|random|oracle|spcd>                   (default spcd)
//     --mapper <blossom|greedy|hierarchical>             (default blossom)
//     --reps <n>            repetitions                  (default 3)
//     --jobs <n>            worker threads, 1 = serial   (default SPCD_JOBS)
//     --scale <f>           workload length multiplier   (default 1.0)
//     --granularity <log2>  detection granularity shift  (default 12)
//     --fault-ratio <f>     extra-fault target ratio     (default 0.10)
//     --window <cycles>     temporal window, 0 = off     (default 0)
//     --no-migration        detect only, never migrate
//     --data-mapping        enable SPCD page migration
//     --chaos <intensity>   deterministic perturbations    (default off,
//                           or the SPCD_CHAOS_* environment knobs)
//     --adversary <kind>    adversarial faulter: covert|skew|phase_flip
//                           (default off, or the SPCD_ADV_* knobs)
//     --adv-intensity <f>   phantom faults per real fault  (default 1.0
//                           when --adversary is given)
//     --harden              enable the hardening defenses  (default off,
//                           or the SPCD_HARDEN* environment knobs)
//     --matrix              print the detected matrix (spcd only)
//     --trace-out <file>    write a Chrome trace_event JSON (sim-time
//                           events; open in chrome://tracing or Perfetto)
//     --metrics-out <file>  write the machine-readable metrics JSON
//
// Exit codes follow the SpcdConfig::validate() contract: any malformed
// command line — unknown flag, missing or non-numeric value, unknown
// bench/policy, invalid configuration — prints the offending input plus
// the usage text and exits 2; --help exits 0. Repetitions run under
// supervision (SPCD_CELL_RETRIES / SPCD_CELL_TIMEOUT_MS): a repetition
// that exhausts its retries is quarantined and the run exits 1 after
// printing everything it has.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "chaos/adversary.hpp"
#include "chaos/perturbation.hpp"
#include "core/mapping_strategy.hpp"
#include "core/metrics_export.hpp"
#include "core/runner.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"
#include "workloads/npb.hpp"

namespace {

const char* kUsage =
    "usage: spcdsim [--bench NAME] [--policy os|random|oracle|spcd]\n"
    "               [--mapper blossom|greedy|hierarchical]\n"
    "               [--reps N] [--jobs N] [--scale F]\n"
    "               [--granularity SHIFT] [--fault-ratio F]\n"
    "               [--window CYCLES] [--no-migration] [--data-mapping]\n"
    "               [--chaos INTENSITY] [--matrix]\n"
    "               [--adversary covert|skew|phase_flip]\n"
    "               [--adv-intensity F] [--harden]\n"
    "               [--trace-out FILE] [--metrics-out FILE]\n";

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

int run(int argc, char** argv) {
  using namespace spcd;

  std::string bench = "sp";
  std::string policy_name = "spcd";
  std::uint32_t reps = 3;
  double scale = 1.0;
  bool show_matrix = false;
  std::string trace_out;
  std::string metrics_out;
  core::RunnerConfig config;
  config.chaos = chaos::config_from_env();
  config.adversary = chaos::adversary_from_env();
  config.spcd.hardening = core::HardeningConfig::from_env();

  util::CliArgs args(argc, argv, kUsage);
  while (args.next()) {
    if (args.is("--bench")) {
      bench = args.value();
    } else if (args.is("--policy")) {
      policy_name = args.value();
    } else if (args.is("--mapper")) {
      config.spcd.mapping.strategy = args.value();
    } else if (args.is("--reps")) {
      reps = args.u32();
    } else if (args.is("--jobs")) {
      config.jobs = args.u32();
    } else if (args.is("--scale")) {
      scale = args.real();
    } else if (args.is("--granularity")) {
      config.spcd.table.granularity_shift =
          static_cast<unsigned>(args.u64());
    } else if (args.is("--fault-ratio")) {
      config.spcd.extra_fault_ratio = args.real();
    } else if (args.is("--window")) {
      config.spcd.table.time_window = static_cast<util::Cycles>(args.u64());
    } else if (args.is("--no-migration")) {
      config.spcd.enable_migration = false;
    } else if (args.is("--data-mapping")) {
      config.spcd.enable_data_mapping = true;
    } else if (args.is("--chaos")) {
      config.chaos =
          chaos::PerturbationConfig::at_intensity(args.real());
    } else if (args.is("--adversary")) {
      const char* name = args.value();
      if (!chaos::parse_adversary_kind(name, &config.adversary.kind)) {
        args.fail("unknown adversary %s\n", name);
      }
      if (config.adversary.intensity <= 0.0) config.adversary.intensity = 1.0;
    } else if (args.is("--adv-intensity")) {
      config.adversary.intensity = args.real();
    } else if (args.is("--harden")) {
      config.spcd.hardening.enabled = true;
    } else if (args.is("--matrix")) {
      show_matrix = true;
    } else if (args.is("--trace-out")) {
      trace_out = args.value();
    } else if (args.is("--metrics-out")) {
      metrics_out = args.value();
    } else if (args.help()) {
      return 0;
    } else {
      args.unknown();
    }
  }

  // Exporting implies capturing: the SPCD_TRACE knob need not be set too.
  if (!trace_out.empty() || !metrics_out.empty()) {
    config.trace.enabled = true;
  }

  const std::optional<core::MappingPolicy> parsed =
      core::parse_policy(policy_name);
  if (!parsed) {
    args.fail("unknown policy %s\n", policy_name.c_str());
  }
  const core::MappingPolicy policy = *parsed;

  if (!core::parse_mapping_strategy(config.spcd.mapping.strategy)) {
    const std::string what = config.spcd.mapping.strategy + " (choose from " +
                             core::mapping_strategy_list() + ")";
    args.fail("unknown mapper %s\n", what.c_str());
  }

  core::WorkloadFactory factory;
  if (bench == "prodcons") {
    factory = [scale](std::uint64_t seed) {
      return workloads::make_prodcons(seed, scale);
    };
  } else {
    try {
      (void)workloads::make_nas(bench, 0, scale);  // validate the name
    } catch (const std::exception& e) {
      args.fail("%s\n", e.what());
    }
    factory = workloads::nas_factory(bench, scale);
  }

  // Reject bad configurations here with a readable message instead of
  // letting the kernel constructor throw mid-run.
  if (const std::string error = config.spcd.validate(); !error.empty()) {
    std::fprintf(stderr, "invalid SPCD configuration: %s\n", error.c_str());
    return 2;
  }
  if (const std::string error = config.chaos.validate(); !error.empty()) {
    std::fprintf(stderr, "invalid chaos configuration: %s\n", error.c_str());
    return 2;
  }
  if (const std::string error = config.adversary.validate(); !error.empty()) {
    std::fprintf(stderr, "invalid adversary configuration: %s\n",
                 error.c_str());
    return 2;
  }

  config.repetitions = reps;
  core::Runner runner(config);

  std::printf("spcdsim: %s under %s, %u repetition(s), scale %.2f\n\n",
              bench.c_str(), policy_name.c_str(), reps, scale);
  // Supervised sweep: flaky repetitions (e.g. injected worker crashes via
  // SPCD_CHAOS_WORKER_*) are retried and, past the retry budget,
  // quarantined instead of aborting the whole run.
  util::SupervisorReport supervision;
  const auto runs = runner.run_policy_supervised(
      bench, factory, policy, util::SupervisorConfig::from_env(),
      &supervision);

  util::TextTable t;
  t.header({"metric", "mean", "±95% CI"});
  struct Row {
    const char* label;
    double (*metric)(const core::RunMetrics&);
    int precision;
  };
  const Row rows[] = {
      {"execution time [ms]",
       [](const core::RunMetrics& m) { return m.exec_seconds * 1e3; }, 3},
      {"instructions [M]",
       [](const core::RunMetrics& m) {
         return static_cast<double>(m.instructions) / 1e6;
       },
       1},
      {"L2 MPKI", [](const core::RunMetrics& m) { return m.l2_mpki; }, 2},
      {"L3 MPKI", [](const core::RunMetrics& m) { return m.l3_mpki; }, 2},
      {"cache-to-cache [k]",
       [](const core::RunMetrics& m) {
         return static_cast<double>(m.c2c_transactions) / 1e3;
       },
       1},
      {"DRAM accesses [k]",
       [](const core::RunMetrics& m) {
         return static_cast<double>(m.dram_accesses) / 1e3;
       },
       1},
      {"package energy [mJ]",
       [](const core::RunMetrics& m) { return m.package_joules * 1e3; }, 2},
      {"DRAM energy [mJ]",
       [](const core::RunMetrics& m) { return m.dram_joules * 1e3; }, 3},
      {"package EPI [nJ]",
       [](const core::RunMetrics& m) { return m.package_epi_nj; }, 2},
      {"DRAM EPI [nJ]",
       [](const core::RunMetrics& m) { return m.dram_epi_nj; }, 3},
      {"detection overhead [%]",
       [](const core::RunMetrics& m) { return m.detection_overhead * 100; },
       3},
      {"mapping overhead [%]",
       [](const core::RunMetrics& m) { return m.mapping_overhead * 100; }, 3},
      {"migration events",
       [](const core::RunMetrics& m) {
         return static_cast<double>(m.migration_events);
       },
       1},
      {"injected faults [%]",
       [](const core::RunMetrics& m) {
         return m.injected_fault_ratio() * 100;
       },
       1},
  };
  for (const auto& r : rows) {
    const auto ci = core::aggregate(runs, r.metric);
    t.row({r.label, util::fmt_double(ci.mean, r.precision),
           util::fmt_double(ci.ci95, r.precision)});
  }
  const bool perturbed = config.chaos.enabled() ||
                         config.adversary.enabled() ||
                         config.spcd.hardening.enabled;
  if (perturbed && policy == core::MappingPolicy::kSpcd) {
    // The degradation counters come from the shared descriptor table, so
    // this table, the robustness ablation and the JSON exporter can never
    // drift apart.
    for (const auto& d : core::degradation_metric_descriptors()) {
      const auto ci = core::aggregate(runs, d.get);
      t.row({d.name, util::fmt_double(ci.mean, 1),
             util::fmt_double(ci.ci95, 1)});
    }
  }
  std::fputs(t.render().c_str(), stdout);

  // Harness-health counters (only shown when supervision did something, so
  // clean runs keep their familiar output).
  core::SupervisionCounters sup_counters;
  sup_counters.cells_retried = supervision.retried;
  sup_counters.cells_quarantined = supervision.quarantined.size();
  sup_counters.watchdog_fires = supervision.watchdog_fires;
  const bool supervised =
      sup_counters.cells_retried != 0 || sup_counters.cells_quarantined != 0 ||
      sup_counters.watchdog_fires != 0 || config.chaos.worker_enabled();
  if (supervised) {
    std::printf("\nsupervision: retried=%llu quarantined=%llu "
                "watchdog_fires=%llu\n",
                static_cast<unsigned long long>(sup_counters.cells_retried),
                static_cast<unsigned long long>(
                    sup_counters.cells_quarantined),
                static_cast<unsigned long long>(
                    sup_counters.watchdog_fires));
    for (const auto& job : supervision.quarantined) {
      std::printf("  quarantined: %s after %u attempt(s): %s\n",
                  job.name.c_str(), job.attempts, job.error.c_str());
    }
  }

  if (!trace_out.empty()) {
    std::vector<obs::CaptureRef> captures;
    captures.reserve(runs.size());
    for (std::size_t rep = 0; rep < runs.size(); ++rep) {
      captures.push_back(obs::CaptureRef{
          bench + "/" + policy_name + " rep " + std::to_string(rep),
          runs[rep].obs.get()});
    }
    const std::string trace = obs::export_chrome_trace(captures);
    if (write_file(trace_out, trace)) {
      std::printf("\n(trace written to %s — open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    const std::string json = core::metrics_json(
        bench, policy_name, runs, supervised ? &sup_counters : nullptr);
    if (write_file(metrics_out, json)) {
      std::printf("(metrics written to %s)\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }

  if (show_matrix && policy == core::MappingPolicy::kSpcd && !runs.empty()) {
    if (const auto& m = runs.back().spcd_matrix) {
      std::printf("\nDetected communication matrix (last run):\n%s",
                  util::render_heatmap(m->as_double(), m->size()).c_str());
    }
  }
  // Quarantined repetitions mean the sweep ran to the end but is
  // incomplete: report it in the exit code without aborting the output.
  return supervision.all_completed() ? 0 : 1;
}

int main(int argc, char** argv) {
  // Backstop for configuration errors that slip past the early validate()
  // checks (e.g. future config sources): same exit code as args.fail().
  try {
    return run(argc, argv);
  } catch (const spcd::core::ConfigError& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 2;
  }
}
