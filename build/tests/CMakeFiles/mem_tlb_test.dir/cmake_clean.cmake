file(REMOVE_RECURSE
  "CMakeFiles/mem_tlb_test.dir/mem/tlb_test.cpp.o"
  "CMakeFiles/mem_tlb_test.dir/mem/tlb_test.cpp.o.d"
  "mem_tlb_test"
  "mem_tlb_test.pdb"
  "mem_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
