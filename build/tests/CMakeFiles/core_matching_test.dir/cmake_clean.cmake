file(REMOVE_RECURSE
  "CMakeFiles/core_matching_test.dir/core/matching_test.cpp.o"
  "CMakeFiles/core_matching_test.dir/core/matching_test.cpp.o.d"
  "core_matching_test"
  "core_matching_test.pdb"
  "core_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
