file(REMOVE_RECURSE
  "CMakeFiles/core_data_mapper_test.dir/core/data_mapper_test.cpp.o"
  "CMakeFiles/core_data_mapper_test.dir/core/data_mapper_test.cpp.o.d"
  "core_data_mapper_test"
  "core_data_mapper_test.pdb"
  "core_data_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_data_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
