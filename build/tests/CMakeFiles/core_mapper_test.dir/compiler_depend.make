# Empty compiler generated dependencies file for core_mapper_test.
# This may be replaced when dependencies are built.
