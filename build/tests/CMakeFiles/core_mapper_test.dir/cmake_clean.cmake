file(REMOVE_RECURSE
  "CMakeFiles/core_mapper_test.dir/core/mapper_test.cpp.o"
  "CMakeFiles/core_mapper_test.dir/core/mapper_test.cpp.o.d"
  "core_mapper_test"
  "core_mapper_test.pdb"
  "core_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
