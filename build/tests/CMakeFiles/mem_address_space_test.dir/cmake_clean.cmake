file(REMOVE_RECURSE
  "CMakeFiles/mem_address_space_test.dir/mem/address_space_test.cpp.o"
  "CMakeFiles/mem_address_space_test.dir/mem/address_space_test.cpp.o.d"
  "mem_address_space_test"
  "mem_address_space_test.pdb"
  "mem_address_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
