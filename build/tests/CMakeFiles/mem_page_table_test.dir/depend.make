# Empty dependencies file for mem_page_table_test.
# This may be replaced when dependencies are built.
