file(REMOVE_RECURSE
  "CMakeFiles/mem_page_table_test.dir/mem/page_table_test.cpp.o"
  "CMakeFiles/mem_page_table_test.dir/mem/page_table_test.cpp.o.d"
  "mem_page_table_test"
  "mem_page_table_test.pdb"
  "mem_page_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_page_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
