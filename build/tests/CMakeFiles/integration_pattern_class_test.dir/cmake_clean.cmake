file(REMOVE_RECURSE
  "CMakeFiles/integration_pattern_class_test.dir/integration/pattern_class_test.cpp.o"
  "CMakeFiles/integration_pattern_class_test.dir/integration/pattern_class_test.cpp.o.d"
  "integration_pattern_class_test"
  "integration_pattern_class_test.pdb"
  "integration_pattern_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_pattern_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
