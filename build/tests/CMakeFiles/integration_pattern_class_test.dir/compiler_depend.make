# Empty compiler generated dependencies file for integration_pattern_class_test.
# This may be replaced when dependencies are built.
