file(REMOVE_RECURSE
  "CMakeFiles/util_heatmap_test.dir/util/heatmap_test.cpp.o"
  "CMakeFiles/util_heatmap_test.dir/util/heatmap_test.cpp.o.d"
  "util_heatmap_test"
  "util_heatmap_test.pdb"
  "util_heatmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_heatmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
