# Empty dependencies file for sim_memory_hierarchy_test.
# This may be replaced when dependencies are built.
