# Empty compiler generated dependencies file for core_spcd_kernel_test.
# This may be replaced when dependencies are built.
