file(REMOVE_RECURSE
  "CMakeFiles/core_comm_filter_test.dir/core/comm_filter_test.cpp.o"
  "CMakeFiles/core_comm_filter_test.dir/core/comm_filter_test.cpp.o.d"
  "core_comm_filter_test"
  "core_comm_filter_test.pdb"
  "core_comm_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_comm_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
