# Empty dependencies file for core_comm_filter_test.
# This may be replaced when dependencies are built.
