
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/fault_injector_test.cpp" "tests/CMakeFiles/core_fault_injector_test.dir/core/fault_injector_test.cpp.o" "gcc" "tests/CMakeFiles/core_fault_injector_test.dir/core/fault_injector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/spcd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spcd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spcd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/spcd_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
