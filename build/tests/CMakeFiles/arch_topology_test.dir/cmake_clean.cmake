file(REMOVE_RECURSE
  "CMakeFiles/arch_topology_test.dir/arch/topology_test.cpp.o"
  "CMakeFiles/arch_topology_test.dir/arch/topology_test.cpp.o.d"
  "arch_topology_test"
  "arch_topology_test.pdb"
  "arch_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
