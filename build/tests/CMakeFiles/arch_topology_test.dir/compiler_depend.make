# Empty compiler generated dependencies file for arch_topology_test.
# This may be replaced when dependencies are built.
