# Empty dependencies file for workloads_block_program_test.
# This may be replaced when dependencies are built.
