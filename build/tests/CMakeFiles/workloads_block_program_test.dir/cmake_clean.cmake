file(REMOVE_RECURSE
  "CMakeFiles/workloads_block_program_test.dir/workloads/block_program_test.cpp.o"
  "CMakeFiles/workloads_block_program_test.dir/workloads/block_program_test.cpp.o.d"
  "workloads_block_program_test"
  "workloads_block_program_test.pdb"
  "workloads_block_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_block_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
