file(REMOVE_RECURSE
  "CMakeFiles/arch_machine_spec_test.dir/arch/machine_spec_test.cpp.o"
  "CMakeFiles/arch_machine_spec_test.dir/arch/machine_spec_test.cpp.o.d"
  "arch_machine_spec_test"
  "arch_machine_spec_test.pdb"
  "arch_machine_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_machine_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
