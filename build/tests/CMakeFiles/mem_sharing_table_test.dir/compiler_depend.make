# Empty compiler generated dependencies file for mem_sharing_table_test.
# This may be replaced when dependencies are built.
