# Empty compiler generated dependencies file for spcdsim.
# This may be replaced when dependencies are built.
