file(REMOVE_RECURSE
  "CMakeFiles/spcdsim.dir/spcdsim.cpp.o"
  "CMakeFiles/spcdsim.dir/spcdsim.cpp.o.d"
  "spcdsim"
  "spcdsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcdsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
