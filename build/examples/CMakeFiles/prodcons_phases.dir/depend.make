# Empty dependencies file for prodcons_phases.
# This may be replaced when dependencies are built.
