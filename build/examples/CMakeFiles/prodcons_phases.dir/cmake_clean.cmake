file(REMOVE_RECURSE
  "CMakeFiles/prodcons_phases.dir/prodcons_phases.cpp.o"
  "CMakeFiles/prodcons_phases.dir/prodcons_phases.cpp.o.d"
  "prodcons_phases"
  "prodcons_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodcons_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
