# Empty compiler generated dependencies file for spcd_sim.
# This may be replaced when dependencies are built.
