
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/spcd_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/spcd_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/spcd_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/spcd_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/spcd_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/spcd_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/spcd_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/spcd_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_hierarchy.cpp" "src/sim/CMakeFiles/spcd_sim.dir/memory_hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/spcd_sim.dir/memory_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/spcd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/spcd_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
