file(REMOVE_RECURSE
  "libspcd_sim.a"
)
