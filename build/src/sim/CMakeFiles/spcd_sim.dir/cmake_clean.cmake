file(REMOVE_RECURSE
  "CMakeFiles/spcd_sim.dir/cache.cpp.o"
  "CMakeFiles/spcd_sim.dir/cache.cpp.o.d"
  "CMakeFiles/spcd_sim.dir/energy.cpp.o"
  "CMakeFiles/spcd_sim.dir/energy.cpp.o.d"
  "CMakeFiles/spcd_sim.dir/engine.cpp.o"
  "CMakeFiles/spcd_sim.dir/engine.cpp.o.d"
  "CMakeFiles/spcd_sim.dir/machine.cpp.o"
  "CMakeFiles/spcd_sim.dir/machine.cpp.o.d"
  "CMakeFiles/spcd_sim.dir/memory_hierarchy.cpp.o"
  "CMakeFiles/spcd_sim.dir/memory_hierarchy.cpp.o.d"
  "libspcd_sim.a"
  "libspcd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
