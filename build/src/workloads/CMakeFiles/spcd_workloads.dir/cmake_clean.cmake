file(REMOVE_RECURSE
  "CMakeFiles/spcd_workloads.dir/alltoall_kernel.cpp.o"
  "CMakeFiles/spcd_workloads.dir/alltoall_kernel.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/datacube_kernel.cpp.o"
  "CMakeFiles/spcd_workloads.dir/datacube_kernel.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/domain_kernel.cpp.o"
  "CMakeFiles/spcd_workloads.dir/domain_kernel.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/npb.cpp.o"
  "CMakeFiles/spcd_workloads.dir/npb.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/private_kernel.cpp.o"
  "CMakeFiles/spcd_workloads.dir/private_kernel.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/prodcons.cpp.o"
  "CMakeFiles/spcd_workloads.dir/prodcons.cpp.o.d"
  "CMakeFiles/spcd_workloads.dir/trace.cpp.o"
  "CMakeFiles/spcd_workloads.dir/trace.cpp.o.d"
  "libspcd_workloads.a"
  "libspcd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
