file(REMOVE_RECURSE
  "libspcd_workloads.a"
)
