# Empty dependencies file for spcd_workloads.
# This may be replaced when dependencies are built.
