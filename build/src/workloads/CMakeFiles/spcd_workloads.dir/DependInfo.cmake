
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alltoall_kernel.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/alltoall_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/alltoall_kernel.cpp.o.d"
  "/root/repo/src/workloads/datacube_kernel.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/datacube_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/datacube_kernel.cpp.o.d"
  "/root/repo/src/workloads/domain_kernel.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/domain_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/domain_kernel.cpp.o.d"
  "/root/repo/src/workloads/npb.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/npb.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/npb.cpp.o.d"
  "/root/repo/src/workloads/private_kernel.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/private_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/private_kernel.cpp.o.d"
  "/root/repo/src/workloads/prodcons.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/prodcons.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/prodcons.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/workloads/CMakeFiles/spcd_workloads.dir/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/spcd_workloads.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spcd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spcd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spcd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/spcd_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
