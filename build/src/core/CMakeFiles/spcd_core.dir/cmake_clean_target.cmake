file(REMOVE_RECURSE
  "libspcd_core.a"
)
