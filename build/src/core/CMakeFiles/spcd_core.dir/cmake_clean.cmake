file(REMOVE_RECURSE
  "CMakeFiles/spcd_core.dir/comm_filter.cpp.o"
  "CMakeFiles/spcd_core.dir/comm_filter.cpp.o.d"
  "CMakeFiles/spcd_core.dir/comm_matrix.cpp.o"
  "CMakeFiles/spcd_core.dir/comm_matrix.cpp.o.d"
  "CMakeFiles/spcd_core.dir/data_mapper.cpp.o"
  "CMakeFiles/spcd_core.dir/data_mapper.cpp.o.d"
  "CMakeFiles/spcd_core.dir/fault_injector.cpp.o"
  "CMakeFiles/spcd_core.dir/fault_injector.cpp.o.d"
  "CMakeFiles/spcd_core.dir/mapper.cpp.o"
  "CMakeFiles/spcd_core.dir/mapper.cpp.o.d"
  "CMakeFiles/spcd_core.dir/matching.cpp.o"
  "CMakeFiles/spcd_core.dir/matching.cpp.o.d"
  "CMakeFiles/spcd_core.dir/oracle.cpp.o"
  "CMakeFiles/spcd_core.dir/oracle.cpp.o.d"
  "CMakeFiles/spcd_core.dir/os_scheduler.cpp.o"
  "CMakeFiles/spcd_core.dir/os_scheduler.cpp.o.d"
  "CMakeFiles/spcd_core.dir/policy.cpp.o"
  "CMakeFiles/spcd_core.dir/policy.cpp.o.d"
  "CMakeFiles/spcd_core.dir/runner.cpp.o"
  "CMakeFiles/spcd_core.dir/runner.cpp.o.d"
  "CMakeFiles/spcd_core.dir/spcd_detector.cpp.o"
  "CMakeFiles/spcd_core.dir/spcd_detector.cpp.o.d"
  "CMakeFiles/spcd_core.dir/spcd_kernel.cpp.o"
  "CMakeFiles/spcd_core.dir/spcd_kernel.cpp.o.d"
  "libspcd_core.a"
  "libspcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
