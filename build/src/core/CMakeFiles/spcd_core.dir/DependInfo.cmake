
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_filter.cpp" "src/core/CMakeFiles/spcd_core.dir/comm_filter.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/comm_filter.cpp.o.d"
  "/root/repo/src/core/comm_matrix.cpp" "src/core/CMakeFiles/spcd_core.dir/comm_matrix.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/comm_matrix.cpp.o.d"
  "/root/repo/src/core/data_mapper.cpp" "src/core/CMakeFiles/spcd_core.dir/data_mapper.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/data_mapper.cpp.o.d"
  "/root/repo/src/core/fault_injector.cpp" "src/core/CMakeFiles/spcd_core.dir/fault_injector.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/fault_injector.cpp.o.d"
  "/root/repo/src/core/mapper.cpp" "src/core/CMakeFiles/spcd_core.dir/mapper.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/mapper.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/core/CMakeFiles/spcd_core.dir/matching.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/matching.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/spcd_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/os_scheduler.cpp" "src/core/CMakeFiles/spcd_core.dir/os_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/os_scheduler.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/spcd_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/spcd_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/spcd_detector.cpp" "src/core/CMakeFiles/spcd_core.dir/spcd_detector.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/spcd_detector.cpp.o.d"
  "/root/repo/src/core/spcd_kernel.cpp" "src/core/CMakeFiles/spcd_core.dir/spcd_kernel.cpp.o" "gcc" "src/core/CMakeFiles/spcd_core.dir/spcd_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spcd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spcd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/spcd_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
