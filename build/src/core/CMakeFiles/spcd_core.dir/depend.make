# Empty dependencies file for spcd_core.
# This may be replaced when dependencies are built.
