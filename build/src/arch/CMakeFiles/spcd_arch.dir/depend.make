# Empty dependencies file for spcd_arch.
# This may be replaced when dependencies are built.
