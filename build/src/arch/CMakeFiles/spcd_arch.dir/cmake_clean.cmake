file(REMOVE_RECURSE
  "CMakeFiles/spcd_arch.dir/machine_spec.cpp.o"
  "CMakeFiles/spcd_arch.dir/machine_spec.cpp.o.d"
  "CMakeFiles/spcd_arch.dir/topology.cpp.o"
  "CMakeFiles/spcd_arch.dir/topology.cpp.o.d"
  "libspcd_arch.a"
  "libspcd_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
