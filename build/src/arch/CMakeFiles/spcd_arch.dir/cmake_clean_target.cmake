file(REMOVE_RECURSE
  "libspcd_arch.a"
)
