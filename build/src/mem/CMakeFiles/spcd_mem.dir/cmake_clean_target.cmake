file(REMOVE_RECURSE
  "libspcd_mem.a"
)
