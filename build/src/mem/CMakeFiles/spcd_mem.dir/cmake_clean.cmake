file(REMOVE_RECURSE
  "CMakeFiles/spcd_mem.dir/address_space.cpp.o"
  "CMakeFiles/spcd_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/spcd_mem.dir/frame_allocator.cpp.o"
  "CMakeFiles/spcd_mem.dir/frame_allocator.cpp.o.d"
  "CMakeFiles/spcd_mem.dir/page_table.cpp.o"
  "CMakeFiles/spcd_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/spcd_mem.dir/sharing_table.cpp.o"
  "CMakeFiles/spcd_mem.dir/sharing_table.cpp.o.d"
  "CMakeFiles/spcd_mem.dir/tlb.cpp.o"
  "CMakeFiles/spcd_mem.dir/tlb.cpp.o.d"
  "libspcd_mem.a"
  "libspcd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
