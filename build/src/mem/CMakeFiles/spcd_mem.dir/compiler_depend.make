# Empty compiler generated dependencies file for spcd_mem.
# This may be replaced when dependencies are built.
