file(REMOVE_RECURSE
  "CMakeFiles/spcd_util.dir/env.cpp.o"
  "CMakeFiles/spcd_util.dir/env.cpp.o.d"
  "CMakeFiles/spcd_util.dir/heatmap.cpp.o"
  "CMakeFiles/spcd_util.dir/heatmap.cpp.o.d"
  "CMakeFiles/spcd_util.dir/log.cpp.o"
  "CMakeFiles/spcd_util.dir/log.cpp.o.d"
  "CMakeFiles/spcd_util.dir/rng.cpp.o"
  "CMakeFiles/spcd_util.dir/rng.cpp.o.d"
  "CMakeFiles/spcd_util.dir/stats.cpp.o"
  "CMakeFiles/spcd_util.dir/stats.cpp.o.d"
  "CMakeFiles/spcd_util.dir/table.cpp.o"
  "CMakeFiles/spcd_util.dir/table.cpp.o.d"
  "libspcd_util.a"
  "libspcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
