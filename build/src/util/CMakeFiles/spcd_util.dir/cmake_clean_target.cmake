file(REMOVE_RECURSE
  "libspcd_util.a"
)
