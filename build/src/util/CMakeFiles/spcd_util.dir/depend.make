# Empty dependencies file for spcd_util.
# This may be replaced when dependencies are built.
