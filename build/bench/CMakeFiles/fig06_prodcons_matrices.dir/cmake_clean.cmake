file(REMOVE_RECURSE
  "CMakeFiles/fig06_prodcons_matrices.dir/fig06_prodcons_matrices.cpp.o"
  "CMakeFiles/fig06_prodcons_matrices.dir/fig06_prodcons_matrices.cpp.o.d"
  "fig06_prodcons_matrices"
  "fig06_prodcons_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prodcons_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
