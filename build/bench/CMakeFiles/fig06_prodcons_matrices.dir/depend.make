# Empty dependencies file for fig06_prodcons_matrices.
# This may be replaced when dependencies are built.
