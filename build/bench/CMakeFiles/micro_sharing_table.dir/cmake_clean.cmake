file(REMOVE_RECURSE
  "CMakeFiles/micro_sharing_table.dir/micro_sharing_table.cpp.o"
  "CMakeFiles/micro_sharing_table.dir/micro_sharing_table.cpp.o.d"
  "micro_sharing_table"
  "micro_sharing_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sharing_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
