# Empty dependencies file for micro_sharing_table.
# This may be replaced when dependencies are built.
