# Empty dependencies file for fig13_dram_energy.
# This may be replaced when dependencies are built.
