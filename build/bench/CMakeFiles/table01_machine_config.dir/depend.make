# Empty dependencies file for table01_machine_config.
# This may be replaced when dependencies are built.
