file(REMOVE_RECURSE
  "CMakeFiles/table01_machine_config.dir/table01_machine_config.cpp.o"
  "CMakeFiles/table01_machine_config.dir/table01_machine_config.cpp.o.d"
  "table01_machine_config"
  "table01_machine_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_machine_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
