file(REMOVE_RECURSE
  "CMakeFiles/fig14_proc_epi.dir/fig14_proc_epi.cpp.o"
  "CMakeFiles/fig14_proc_epi.dir/fig14_proc_epi.cpp.o.d"
  "fig14_proc_epi"
  "fig14_proc_epi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_proc_epi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
