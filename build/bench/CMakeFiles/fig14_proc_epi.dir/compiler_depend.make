# Empty compiler generated dependencies file for fig14_proc_epi.
# This may be replaced when dependencies are built.
