file(REMOVE_RECURSE
  "CMakeFiles/fig15_dram_epi.dir/fig15_dram_epi.cpp.o"
  "CMakeFiles/fig15_dram_epi.dir/fig15_dram_epi.cpp.o.d"
  "fig15_dram_epi"
  "fig15_dram_epi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dram_epi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
