# Empty dependencies file for fig15_dram_epi.
# This may be replaced when dependencies are built.
