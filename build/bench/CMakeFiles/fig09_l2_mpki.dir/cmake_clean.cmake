file(REMOVE_RECURSE
  "CMakeFiles/fig09_l2_mpki.dir/fig09_l2_mpki.cpp.o"
  "CMakeFiles/fig09_l2_mpki.dir/fig09_l2_mpki.cpp.o.d"
  "fig09_l2_mpki"
  "fig09_l2_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_l2_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
