# Empty dependencies file for fig09_l2_mpki.
# This may be replaced when dependencies are built.
