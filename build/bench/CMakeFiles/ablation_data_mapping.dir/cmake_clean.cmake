file(REMOVE_RECURSE
  "CMakeFiles/ablation_data_mapping.dir/ablation_data_mapping.cpp.o"
  "CMakeFiles/ablation_data_mapping.dir/ablation_data_mapping.cpp.o.d"
  "ablation_data_mapping"
  "ablation_data_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_data_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
