# Empty dependencies file for ablation_data_mapping.
# This may be replaced when dependencies are built.
