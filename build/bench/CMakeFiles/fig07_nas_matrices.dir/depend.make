# Empty dependencies file for fig07_nas_matrices.
# This may be replaced when dependencies are built.
