file(REMOVE_RECURSE
  "CMakeFiles/fig07_nas_matrices.dir/fig07_nas_matrices.cpp.o"
  "CMakeFiles/fig07_nas_matrices.dir/fig07_nas_matrices.cpp.o.d"
  "fig07_nas_matrices"
  "fig07_nas_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nas_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
