# Empty compiler generated dependencies file for spcd_bench_common.
# This may be replaced when dependencies are built.
