file(REMOVE_RECURSE
  "CMakeFiles/spcd_bench_common.dir/pipeline.cpp.o"
  "CMakeFiles/spcd_bench_common.dir/pipeline.cpp.o.d"
  "libspcd_bench_common.a"
  "libspcd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
