file(REMOVE_RECURSE
  "libspcd_bench_common.a"
)
