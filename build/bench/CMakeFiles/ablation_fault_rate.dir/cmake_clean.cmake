file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_rate.dir/ablation_fault_rate.cpp.o"
  "CMakeFiles/ablation_fault_rate.dir/ablation_fault_rate.cpp.o.d"
  "ablation_fault_rate"
  "ablation_fault_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
