# Empty dependencies file for ablation_fault_rate.
# This may be replaced when dependencies are built.
