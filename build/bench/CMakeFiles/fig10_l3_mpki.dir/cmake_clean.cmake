file(REMOVE_RECURSE
  "CMakeFiles/fig10_l3_mpki.dir/fig10_l3_mpki.cpp.o"
  "CMakeFiles/fig10_l3_mpki.dir/fig10_l3_mpki.cpp.o.d"
  "fig10_l3_mpki"
  "fig10_l3_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l3_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
