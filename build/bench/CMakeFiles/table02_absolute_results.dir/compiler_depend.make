# Empty compiler generated dependencies file for table02_absolute_results.
# This may be replaced when dependencies are built.
