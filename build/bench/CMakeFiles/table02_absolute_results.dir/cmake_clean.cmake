file(REMOVE_RECURSE
  "CMakeFiles/table02_absolute_results.dir/table02_absolute_results.cpp.o"
  "CMakeFiles/table02_absolute_results.dir/table02_absolute_results.cpp.o.d"
  "table02_absolute_results"
  "table02_absolute_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_absolute_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
