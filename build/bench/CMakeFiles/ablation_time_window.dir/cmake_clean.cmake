file(REMOVE_RECURSE
  "CMakeFiles/ablation_time_window.dir/ablation_time_window.cpp.o"
  "CMakeFiles/ablation_time_window.dir/ablation_time_window.cpp.o.d"
  "ablation_time_window"
  "ablation_time_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_time_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
