# Empty compiler generated dependencies file for ablation_time_window.
# This may be replaced when dependencies are built.
