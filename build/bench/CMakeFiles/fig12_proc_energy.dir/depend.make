# Empty dependencies file for fig12_proc_energy.
# This may be replaced when dependencies are built.
