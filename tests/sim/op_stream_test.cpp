#include "sim/op_stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace spcd::sim {
namespace {

OpChunk make_chunk(std::uint64_t base, std::uint32_t count,
                   bool final_chunk = false) {
  OpChunk chunk;
  chunk.count = count;
  chunk.final_chunk = final_chunk;
  for (std::uint32_t i = 0; i < count; ++i) {
    chunk.ops[i] = Op::access(base + i, false, 1, 0);
  }
  return chunk;
}

TEST(OpStreamBufferTest, PopReturnsChunksInPushOrder) {
  OpStreamBuffer buf(4);
  buf.push(make_chunk(100, 3));
  buf.push(make_chunk(200, 2, /*final_chunk=*/true));
  OpChunk out;
  ASSERT_TRUE(buf.pop(out));
  EXPECT_EQ(out.count, 3u);
  EXPECT_EQ(out.ops[0].vaddr, 100u);
  EXPECT_EQ(out.ops[2].vaddr, 102u);
  EXPECT_FALSE(out.final_chunk);
  ASSERT_TRUE(buf.pop(out));
  EXPECT_EQ(out.count, 2u);
  EXPECT_EQ(out.ops[0].vaddr, 200u);
  EXPECT_TRUE(out.final_chunk);
}

TEST(OpStreamBufferTest, HasSpaceReflectsWindowBound) {
  OpStreamBuffer buf(2);
  EXPECT_TRUE(buf.has_space());
  buf.push(make_chunk(0, 1));
  EXPECT_TRUE(buf.has_space());
  buf.push(make_chunk(0, 1));
  EXPECT_FALSE(buf.has_space());
  EXPECT_EQ(buf.queued(), 2u);
  OpChunk out;
  ASSERT_TRUE(buf.pop(out));
  EXPECT_TRUE(buf.has_space());
}

TEST(OpStreamBufferTest, CloseUnblocksEmptyPopAndDiscardsPushes) {
  OpStreamBuffer buf(4);
  buf.close();
  OpChunk out;
  EXPECT_FALSE(buf.pop(out));
  // Pushes after close are discarded; has_space stays true so a producer
  // that raced the shutdown never parks forever.
  EXPECT_TRUE(buf.has_space());
  buf.push(make_chunk(0, 1));
  EXPECT_EQ(buf.queued(), 0u);
  buf.close();  // idempotent
}

TEST(OpStreamBufferTest, CloseDrainsQueuedChunksFirst) {
  OpStreamBuffer buf(4);
  buf.push(make_chunk(7, 1));
  buf.close();
  OpChunk out;
  ASSERT_TRUE(buf.pop(out));  // the queued chunk survives the close
  EXPECT_EQ(out.ops[0].vaddr, 7u);
  EXPECT_FALSE(buf.pop(out));
}

TEST(OpStreamBufferTest, BlockingPopSeesProducerThread) {
  OpStreamBuffer buf(2);
  constexpr std::uint32_t kChunks = 64;
  std::thread producer([&buf] {
    for (std::uint32_t c = 0; c < kChunks; ++c) {
      while (!buf.has_space()) std::this_thread::yield();
      buf.push(make_chunk(c * 1000, OpChunk::kChunkOps,
                          /*final_chunk=*/c + 1 == kChunks));
    }
  });
  OpChunk out;
  for (std::uint32_t c = 0; c < kChunks; ++c) {
    ASSERT_TRUE(buf.pop(out));
    EXPECT_EQ(out.ops[0].vaddr, c * 1000u);
    EXPECT_EQ(out.count, OpChunk::kChunkOps);
    EXPECT_EQ(out.final_chunk, c + 1 == kChunks);
  }
  producer.join();
  EXPECT_EQ(buf.queued(), 0u);
}

// --- end-to-end: pre-generated streams reproduce the serial engine --------

class RandomAccess final : public Workload {
 public:
  RandomAccess(std::uint32_t threads, std::uint64_t ops)
      : threads_(threads), ops_(ops) {}
  std::string name() const override { return "random_access"; }
  std::uint32_t num_threads() const override { return threads_; }
  std::unique_ptr<ThreadProgram> make_thread(std::uint32_t tid,
                                             std::uint64_t) override {
    class P final : public ThreadProgram {
     public:
      P(std::uint32_t tid, std::uint64_t ops)
          : rng_(tid * 131 + 7), ops_(ops) {}
      Op next() override {
        if (n_++ >= ops_) return Op::finish();
        if (n_ % 500 == 0) return Op::barrier();
        return Op::access(0x4000 + rng_.below(1 << 16), rng_.chance(0.3), 2,
                          15);
      }

     private:
      util::Xoshiro256 rng_;
      std::uint64_t ops_, n_ = 0;
    };
    return std::make_unique<P>(tid, ops_);
  }

 private:
  std::uint32_t threads_;
  std::uint64_t ops_;
};

TEST(OpStreamEngineTest, ShardedRunMatchesSerialBitForBit) {
  struct Result {
    util::Cycles finish;
    std::uint64_t insns, l2, inval, faults;
    bool operator==(const Result& o) const {
      return finish == o.finish && insns == o.insns && l2 == o.l2 &&
             inval == o.inval && faults == o.faults;
    }
  };
  auto run = [](unsigned shards) {
    Machine machine(arch::tiny_test_machine());
    auto as = machine.make_address_space();
    RandomAccess wl(4, 3'000);
    EngineConfig cfg;
    cfg.shards = shards;
    // Tiny run-ahead window so the producers hit the parking path.
    cfg.window_chunks = 2;
    Engine engine(machine, as, wl, {0, 2, 4, 6}, cfg);
    engine.run();
    EXPECT_FALSE(engine.timed_out());
    const auto& c = engine.counters();
    return Result{engine.finish_time(), c.instructions, c.l2_misses,
                  c.invalidations, c.minor_faults};
  };
  const Result serial = run(1);
  EXPECT_TRUE(run(2) == serial);
  EXPECT_TRUE(run(4) == serial);
}

}  // namespace
}  // namespace spcd::sim
