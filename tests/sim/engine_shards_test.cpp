#include "sim/engine_shards.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace spcd::sim {
namespace {

TEST(ConfiguredEngineShardsTest, DefaultsToSerialReadsEnvAndClamps) {
  ::unsetenv("SPCD_ENGINE_SHARDS");
  EXPECT_EQ(configured_engine_shards(), 1u);
  ::setenv("SPCD_ENGINE_SHARDS", "4", 1);
  EXPECT_EQ(configured_engine_shards(), 4u);
  ::setenv("SPCD_ENGINE_SHARDS", "9999", 1);
  EXPECT_EQ(configured_engine_shards(), 256u);
  // 0 asks for the hardware concurrency.
  ::setenv("SPCD_ENGINE_SHARDS", "0", 1);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(configured_engine_shards(), hw == 0 ? 1u : hw);
  ::unsetenv("SPCD_ENGINE_SHARDS");
}

TEST(ShardPlanTest, RangesCoverEveryThreadExactlyOnce) {
  for (const std::uint32_t n : {1u, 2u, 3u, 7u, 8u, 16u, 33u}) {
    for (const unsigned shards : {1u, 2u, 3u, 4u, 8u}) {
      ShardPlan plan(n, shards);
      // Concatenated ranges tile [0, n) with no gap or overlap.
      std::uint32_t next = 0;
      for (unsigned s = 0; s < plan.num_shards(); ++s) {
        const auto [first, last] = plan.thread_range(s);
        EXPECT_EQ(first, next) << "n=" << n << " shards=" << shards;
        EXPECT_LE(first, last);
        next = last;
      }
      EXPECT_EQ(next, n);
      // shard_of_thread agrees with the ranges.
      for (std::uint32_t tid = 0; tid < n; ++tid) {
        const unsigned s = plan.shard_of_thread(tid);
        const auto [first, last] = plan.thread_range(s);
        EXPECT_GE(tid, first);
        EXPECT_LT(tid, last);
      }
    }
  }
}

TEST(ShardPlanTest, RangesAreBalanced) {
  // No shard owns more than ceil(n/S) threads, none fewer than floor(n/S).
  for (const std::uint32_t n : {4u, 10u, 31u, 64u}) {
    for (const unsigned shards : {2u, 3u, 4u, 7u}) {
      ShardPlan plan(n, shards);
      if (plan.num_shards() < 2) continue;
      const std::uint32_t lo = n / plan.num_shards();
      const std::uint32_t hi = (n + plan.num_shards() - 1) / plan.num_shards();
      for (unsigned s = 0; s < plan.num_shards(); ++s) {
        const auto [first, last] = plan.thread_range(s);
        EXPECT_GE(last - first, lo);
        EXPECT_LE(last - first, hi);
      }
    }
  }
}

TEST(ShardPlanTest, ShardCountClampsToThreadCount) {
  EXPECT_EQ(ShardPlan(3, 8).num_shards(), 3u);
  EXPECT_EQ(ShardPlan(1, 8).num_shards(), 1u);
  EXPECT_FALSE(ShardPlan(4, 1).parallel());
  EXPECT_TRUE(ShardPlan(4, 2).parallel());
}

TEST(ShardPlanTest, LineOwnershipIsPureAndInRange) {
  for (const unsigned shards : {1u, 2u, 5u, 8u}) {
    for (std::uint64_t line = 0; line < 4096; ++line) {
      const unsigned s = ShardPlan::shard_of_line(line, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardPlan::shard_of_line(line, shards));
    }
  }
  // Single shard owns everything.
  EXPECT_EQ(ShardPlan::shard_of_line(0xdeadbeef, 1), 0u);
}

TEST(ShardPlanTest, LineHashSpreadsStridedPatterns) {
  // Sequential lines (the common striding pattern) must not all land on
  // one shard — that is the point of the Fibonacci hash.
  constexpr unsigned kShards = 8;
  std::vector<std::uint64_t> per_shard(kShards, 0);
  constexpr std::uint64_t kLines = 64 * 1024;
  for (std::uint64_t line = 0; line < kLines; ++line) {
    per_shard[ShardPlan::shard_of_line(line, kShards)]++;
  }
  for (unsigned s = 0; s < kShards; ++s) {
    EXPECT_GT(per_shard[s], kLines / kShards / 2) << "shard " << s;
    EXPECT_LT(per_shard[s], kLines / kShards * 2) << "shard " << s;
  }
}

// --- epoch accounting -----------------------------------------------------

class FixedOps final : public Workload {
 public:
  FixedOps(std::uint32_t threads, std::uint32_t cycles_per_op,
           std::uint64_t ops)
      : threads_(threads), cycles_(cycles_per_op), ops_(ops) {}
  std::string name() const override { return "fixed"; }
  std::uint32_t num_threads() const override { return threads_; }
  std::unique_ptr<ThreadProgram> make_thread(std::uint32_t,
                                             std::uint64_t) override {
    class P final : public ThreadProgram {
     public:
      P(std::uint32_t cycles, std::uint64_t ops) : cycles_(cycles), ops_(ops) {}
      Op next() override {
        return n_++ < ops_ ? Op::compute(1, cycles_) : Op::finish();
      }

     private:
      std::uint32_t cycles_;
      std::uint64_t ops_, n_ = 0;
    };
    return std::make_unique<P>(cycles_, ops_);
  }

 private:
  std::uint32_t threads_;
  std::uint32_t cycles_;
  std::uint64_t ops_;
};

TEST(EngineEpochTest, EpochCountTracksSimulatedTime) {
  // 200 ops x 100 cycles = 20'000 cycles per thread; epoch every 1'000
  // cycles of simulated time. Epochs fire at commit-loop tops, so the
  // boundaries at the very end of the run (after the last loop iteration)
  // may not fire — the count is within a batch of the exact quotient.
  Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  FixedOps wl(2, 100, 200);
  EngineConfig cfg;
  cfg.epoch_interval = 1'000;
  Engine engine(machine, as, wl, {0, 2}, cfg);
  engine.run();
  EXPECT_LE(engine.epoch_count(), engine.finish_time() / 1'000);
  EXPECT_GE(engine.epoch_count() + 7, engine.finish_time() / 1'000);
  EXPECT_GE(engine.epoch_count(), 10u);
}

TEST(EngineEpochTest, EpochsAreIdenticalAtAnyShardCount) {
  auto run = [](unsigned shards) {
    Machine machine(arch::tiny_test_machine());
    auto as = machine.make_address_space();
    FixedOps wl(4, 50, 500);
    EngineConfig cfg;
    cfg.shards = shards;
    cfg.epoch_interval = 2'000;
    Engine engine(machine, as, wl, {0, 2, 4, 6}, cfg);
    engine.run();
    return std::pair<std::uint64_t, util::Cycles>(engine.epoch_count(),
                                                  engine.finish_time());
  };
  const auto serial = run(1);
  EXPECT_GT(serial.first, 0u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

TEST(EngineEpochTest, EpochHooksFireInRegistrationOrderEveryEpoch) {
  Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  FixedOps wl(1, 100, 100);  // 10'000 cycles
  EngineConfig cfg;
  cfg.epoch_interval = 1'000;
  Engine engine(machine, as, wl, {0}, cfg);
  std::vector<int> order;
  engine.add_epoch_hook([&order](Engine&) { order.push_back(1); });
  engine.add_epoch_hook([&order](Engine&) { order.push_back(2); });
  engine.run();
  ASSERT_EQ(order.size(), 2 * engine.epoch_count());
  for (std::size_t i = 0; i < order.size(); i += 2) {
    EXPECT_EQ(order[i], 1);
    EXPECT_EQ(order[i + 1], 2);
  }
}

TEST(EngineEpochTest, ZeroIntervalDisablesEpochs) {
  Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  FixedOps wl(1, 100, 100);
  EngineConfig cfg;
  cfg.epoch_interval = 0;
  Engine engine(machine, as, wl, {0}, cfg);
  engine.run();
  EXPECT_EQ(engine.epoch_count(), 0u);
}

TEST(EngineShardsTest, EngineReportsEffectiveShardCount) {
  Machine machine(arch::tiny_test_machine());
  FixedOps wl(2, 10, 10);
  {
    // Pin the env so the default (cfg.shards == 0) resolves to serial
    // regardless of the SPCD_ENGINE_SHARDS the suite itself runs under.
    const char* prev = std::getenv("SPCD_ENGINE_SHARDS");
    const std::string saved = prev != nullptr ? prev : "";
    ::unsetenv("SPCD_ENGINE_SHARDS");
    auto as = machine.make_address_space();
    Engine engine(machine, as, wl, {0, 2}, {});
    EXPECT_EQ(engine.shard_count(), 1u);
    if (prev != nullptr) {
      ::setenv("SPCD_ENGINE_SHARDS", saved.c_str(), 1);
    }
  }
  {
    Machine fresh(arch::tiny_test_machine());
    auto as = fresh.make_address_space();
    EngineConfig cfg;
    cfg.shards = 8;  // clamped to the 2 threads
    Engine engine(fresh, as, wl, {0, 2}, cfg);
    EXPECT_EQ(engine.shard_count(), 2u);
    engine.run();
    EXPECT_FALSE(engine.timed_out());
  }
}

}  // namespace
}  // namespace spcd::sim
