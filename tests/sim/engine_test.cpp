#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/workload.hpp"

namespace spcd::sim {
namespace {

/// Scripted workload: every thread executes a fixed op list.
class ScriptedWorkload final : public Workload {
 public:
  explicit ScriptedWorkload(std::vector<std::vector<Op>> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "scripted"; }
  std::uint32_t num_threads() const override {
    return static_cast<std::uint32_t>(scripts_.size());
  }
  std::unique_ptr<ThreadProgram> make_thread(std::uint32_t tid,
                                             std::uint64_t) override {
    class Program final : public ThreadProgram {
     public:
      explicit Program(const std::vector<Op>& ops) : ops_(ops) {}
      Op next() override {
        return pos_ < ops_.size() ? ops_[pos_++] : Op::finish();
      }

     private:
      const std::vector<Op>& ops_;
      std::size_t pos_ = 0;
    };
    return std::make_unique<Program>(scripts_[tid]);
  }

 private:
  std::vector<std::vector<Op>> scripts_;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : machine_(arch::tiny_test_machine()) {}

  Machine machine_;
};

TEST_F(EngineTest, PureComputeAdvancesClock) {
  ScriptedWorkload wl({{Op::compute(10, 1000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  engine.run();
  EXPECT_EQ(engine.finish_time(), 1000u);
  EXPECT_EQ(engine.counters().instructions, 10u);
}

TEST_F(EngineTest, SmtPenaltyAppliesWhenSiblingBusy) {
  // Two threads on SMT siblings of core 0 vs. two on separate cores.
  ScriptedWorkload wl({{Op::compute(1, 1000)}, {Op::compute(1, 1000)}});
  {
    auto as = machine_.make_address_space();
    Engine siblings(machine_, as, wl, {0, 1});
    siblings.run();
    const auto penalty = machine_.spec().smt_penalty;
    EXPECT_EQ(siblings.finish_time(),
              static_cast<util::Cycles>(1000 * penalty));
  }
  {
    Machine fresh(arch::tiny_test_machine());
    auto as = fresh.make_address_space();
    Engine separate(fresh, as, wl, {0, 2});
    separate.run();
    EXPECT_EQ(separate.finish_time(), 1000u);
  }
}

TEST_F(EngineTest, AccessTakesFaultAndCachePath) {
  ScriptedWorkload wl({{Op::access(0x1000, false, 5, 0)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  engine.run();
  const auto& c = engine.counters();
  EXPECT_EQ(c.minor_faults, 1u);
  EXPECT_EQ(c.tlb_misses, 1u);
  EXPECT_EQ(c.dram_local + c.dram_remote, 1u);
  // Fault cost dominates the first access.
  EXPECT_GE(engine.finish_time(), machine_.spec().latency.minor_fault);
}

TEST_F(EngineTest, RepeatedAccessHitsTlbAndCache) {
  ScriptedWorkload wl({{Op::access(0x1000, false, 1, 0),
                        Op::access(0x1000, false, 1, 0),
                        Op::access(0x1000, false, 1, 0)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  engine.run();
  EXPECT_EQ(engine.counters().tlb_hits, 2u);
  EXPECT_EQ(engine.counters().l1_hits, 2u);
}

TEST_F(EngineTest, BarrierSynchronizesClocks) {
  // Thread 0 computes 100 cycles, thread 1 computes 5000; both then do one
  // more op. The barrier aligns them at max + barrier_cost.
  EngineConfig cfg;
  cfg.barrier_cost = 300;
  ScriptedWorkload wl({{Op::compute(1, 100), Op::barrier(),
                        Op::compute(1, 10)},
                       {Op::compute(1, 5000), Op::barrier(),
                        Op::compute(1, 10)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0, 2}, cfg);
  engine.run();
  EXPECT_EQ(engine.finish_time(), 5000u + 300u + 10u);
  EXPECT_EQ(engine.counters().barrier_wait_cycles, (5000u - 100u) + 300u * 2);
}

TEST_F(EngineTest, FinishedThreadDoesNotBlockBarrier) {
  // Thread 0 finishes immediately; threads 1 and 2 use a barrier.
  ScriptedWorkload wl({{},
                       {Op::compute(1, 50), Op::barrier(), Op::compute(1, 1)},
                       {Op::compute(1, 70), Op::barrier(), Op::compute(1, 1)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0, 2, 4});
  engine.run();
  EXPECT_FALSE(engine.timed_out());
  EXPECT_GT(engine.finish_time(), 70u);
}

TEST_F(EngineTest, ScheduledEventsRunInOrder) {
  ScriptedWorkload wl({{Op::compute(1, 10000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  std::vector<int> order;
  engine.schedule(5000, [&order](Engine&) { order.push_back(2); });
  engine.schedule(1000, [&order](Engine&) { order.push_back(1); });
  engine.schedule(9000, [&order](Engine&) { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EngineTest, EventsCanReschedule) {
  ScriptedWorkload wl({{Op::compute(1, 100000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  int ticks = 0;
  std::function<void(Engine&)> periodic = [&](Engine& e) {
    ++ticks;
    if (ticks < 5) e.schedule(e.now() + 10000, periodic);
  };
  engine.schedule(10000, periodic);
  engine.run();
  EXPECT_EQ(ticks, 5);
}

TEST_F(EngineTest, MigrationSwapsOccupants) {
  ScriptedWorkload wl({{Op::compute(1, 100000)}, {Op::compute(1, 100000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0, 2});
  engine.schedule(1000, [](Engine& e) { e.migrate(0, 2); });
  engine.run();
  EXPECT_EQ(engine.placement()[0], 2u);
  EXPECT_EQ(engine.placement()[1], 0u);
  EXPECT_EQ(engine.counters().thread_migrations, 2u);
  // Both threads paid the migration cost on top of their compute.
  EXPECT_GT(engine.finish_time(),
            100000u + machine_.spec().latency.migration / 2);
}

TEST_F(EngineTest, MigrationToFreeContextMovesOnly) {
  ScriptedWorkload wl({{Op::compute(1, 100000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  engine.schedule(1000, [](Engine& e) { e.migrate(0, 5); });
  engine.run();
  EXPECT_EQ(engine.placement()[0], 5u);
  EXPECT_EQ(engine.counters().thread_migrations, 1u);
  // After the run every context is free again (the thread finished on 5).
  EXPECT_EQ(engine.thread_on(0), Engine::kNoThread);
  EXPECT_EQ(engine.thread_on(5), Engine::kNoThread);
}

TEST_F(EngineTest, ChargeDetectionAndMappingAreAccounted) {
  ScriptedWorkload wl({{Op::compute(1, 100000)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  engine.schedule(100, [](Engine& e) {
    e.charge_detection(500, 0);
    e.charge_mapping(200, 0);
  });
  engine.run();
  EXPECT_EQ(engine.counters().spcd_detection_cycles, 500u);
  EXPECT_EQ(engine.counters().mapping_cycles, 200u);
  EXPECT_EQ(engine.finish_time(), 100000u + 700u);
}

TEST_F(EngineTest, AccessHookSeesEveryAccess) {
  ScriptedWorkload wl({{Op::access(0x1000, true, 1, 0),
                        Op::access(0x2040, false, 1, 0)}});
  auto as = machine_.make_address_space();
  Engine engine(machine_, as, wl, {0});
  std::vector<std::uint64_t> seen;
  std::vector<bool> writes;
  engine.set_access_hook([&](ThreadId, std::uint64_t vaddr, bool w,
                             util::Cycles) {
    seen.push_back(vaddr);
    writes.push_back(w);
  });
  engine.run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0x1000, 0x2040}));
  EXPECT_EQ(writes, (std::vector<bool>{true, false}));
}

TEST_F(EngineTest, TimeoutStopsRunawayWorkload) {
  // A program that never finishes.
  class Endless final : public Workload {
   public:
    std::string name() const override { return "endless"; }
    std::uint32_t num_threads() const override { return 1; }
    std::unique_ptr<ThreadProgram> make_thread(std::uint32_t,
                                               std::uint64_t) override {
      class P final : public ThreadProgram {
       public:
        Op next() override { return Op::compute(1, 100); }
      };
      return std::make_unique<P>();
    }
  };
  Endless wl;
  auto as = machine_.make_address_space();
  EngineConfig cfg;
  cfg.max_cycles = 50000;
  Engine engine(machine_, as, wl, {0}, cfg);
  engine.run();
  EXPECT_TRUE(engine.timed_out());
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto make_wl = [] {
    std::vector<std::vector<Op>> scripts(4);
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (int i = 0; i < 200; ++i) {
        scripts[t].push_back(
            Op::access(0x1000 * (t + 1) + static_cast<std::uint64_t>(i) * 64,
                       i % 3 == 0, 2, 20));
      }
      scripts[t].push_back(Op::barrier());
      scripts[t].push_back(Op::compute(1, 10));
    }
    return ScriptedWorkload(std::move(scripts));
  };
  util::Cycles t1, t2;
  std::uint64_t i1, i2;
  {
    Machine m(arch::tiny_test_machine());
    auto as = m.make_address_space();
    auto wl = make_wl();
    Engine e(m, as, wl, {0, 2, 4, 6});
    e.run();
    t1 = e.finish_time();
    i1 = e.counters().l2_misses;
  }
  {
    Machine m(arch::tiny_test_machine());
    auto as = m.make_address_space();
    auto wl = make_wl();
    Engine e(m, as, wl, {0, 2, 4, 6});
    e.run();
    t2 = e.finish_time();
    i2 = e.counters().l2_misses;
  }
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(i1, i2);
}

TEST_F(EngineTest, PlacementAffectsSharingLatency) {
  // Two threads ping-pong on one page: co-located on a core they share L1;
  // across sockets every exchange crosses the chip boundary.
  auto make_wl = [] {
    std::vector<std::vector<Op>> scripts(2);
    for (std::uint32_t t = 0; t < 2; ++t) {
      for (std::uint64_t i = 0; i < 500; ++i) {
        scripts[t].push_back(Op::access(0x5000 + (i % 8) * 64, t == 0, 1, 5));
      }
    }
    return ScriptedWorkload(std::move(scripts));
  };
  util::Cycles near_time, far_time;
  {
    Machine m(arch::tiny_test_machine());
    auto as = m.make_address_space();
    auto wl = make_wl();
    Engine e(m, as, wl, {0, 1});  // SMT siblings
    e.run();
    near_time = e.finish_time();
  }
  {
    Machine m(arch::tiny_test_machine());
    auto as = m.make_address_space();
    auto wl = make_wl();
    Engine e(m, as, wl, {0, 4});  // different sockets
    e.run();
    far_time = e.finish_time();
  }
  EXPECT_LT(near_time, far_time);
}

TEST_F(EngineTest, DeathOnNonInjectivePlacement) {
  ScriptedWorkload wl({{}, {}});
  auto as = machine_.make_address_space();
  EXPECT_DEATH(Engine(machine_, as, wl, {3, 3}), "Precondition");
}

}  // namespace
}  // namespace spcd::sim
