#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace spcd::sim {
namespace {

TEST(MachineTest, ConstructsFromSpec) {
  Machine m(arch::tiny_test_machine());
  EXPECT_EQ(m.topology().num_contexts(), 8u);
  EXPECT_EQ(m.page_shift(), 12u);
  EXPECT_EQ(m.line_shift(), 6u);
}

TEST(MachineTest, LineOfComposesFrameAndOffset) {
  Machine m(arch::tiny_test_machine());
  // frame 5, offset 0x8C (line 2 within the page)
  EXPECT_EQ(m.line_of(5, 0x8C), (5ULL << 6) | 2);
  // Offsets within the same line map to the same line address.
  EXPECT_EQ(m.line_of(5, 0x80), m.line_of(5, 0xBF));
  EXPECT_NE(m.line_of(5, 0x80), m.line_of(5, 0xC0));
}

TEST(MachineTest, AddressSpaceUsesMachineFrames) {
  Machine m(arch::tiny_test_machine());
  auto as = m.make_address_space();
  (void)as.translate(0x1000, 0, 0, /*touch_node=*/1, 0);
  EXPECT_EQ(m.frames().allocated_on(1), 1u);
}

TEST(MachineTest, TlbShootdownHitsAllContexts) {
  Machine m(arch::tiny_test_machine());
  m.tlb(0).insert(7);
  m.tlb(3).insert(7);
  m.tlb(5).insert(7);
  m.tlb(5).insert(8);
  EXPECT_EQ(m.tlb_shootdown(7), 3u);
  EXPECT_FALSE(m.tlb(0).probe(7));
  EXPECT_TRUE(m.tlb(5).probe(8));
  EXPECT_EQ(m.tlb_shootdown(7), 0u);  // idempotent
}

TEST(MachineTest, PerContextTlbsAreIndependent) {
  Machine m(arch::tiny_test_machine());
  m.tlb(0).insert(1);
  EXPECT_FALSE(m.tlb(1).probe(1));
}

}  // namespace
}  // namespace spcd::sim
