#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spcd::sim {
namespace {

arch::CacheGeometry tiny() {
  // 2 sets x 2 ways, 64-byte lines.
  return arch::CacheGeometry{.size_bytes = 256, .associativity = 2,
                             .line_bytes = 64};
}

TEST(CacheTest, MissOnEmpty) {
  Cache c(tiny());
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.contains(0));
}

TEST(CacheTest, InsertThenHit) {
  Cache c(tiny());
  const auto r = c.insert(0);
  EXPECT_FALSE(r.evicted);
  EXPECT_TRUE(c.probe(0));
  EXPECT_TRUE(c.contains(0));
}

TEST(CacheTest, SetMappingSeparatesLines) {
  Cache c(tiny());
  c.insert(0);  // set 0
  c.insert(1);  // set 1
  c.insert(2);  // set 0
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(CacheTest, LruEviction) {
  Cache c(tiny());
  c.insert(0);  // set 0
  c.insert(2);  // set 0 (full now)
  EXPECT_TRUE(c.probe(0));  // 0 is MRU
  const auto r = c.insert(4);  // set 0 -> evict 2
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 2u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(4));
}

TEST(CacheTest, ContainsDoesNotTouchLru) {
  Cache c(tiny());
  c.insert(0);
  c.insert(2);
  // contains() must not refresh 0, so 0 stays LRU and gets evicted.
  EXPECT_TRUE(c.contains(0));
  const auto r = c.insert(4);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 0u);
}

TEST(CacheTest, InvalidateFreesWay) {
  Cache c(tiny());
  c.insert(0);
  c.insert(2);
  EXPECT_TRUE(c.invalidate(0));
  EXPECT_FALSE(c.contains(0));
  const auto r = c.insert(4);  // goes into the freed way
  EXPECT_FALSE(r.evicted);
  EXPECT_TRUE(c.contains(2));
}

TEST(CacheTest, InvalidateMissingReturnsFalse) {
  Cache c(tiny());
  EXPECT_FALSE(c.invalidate(123));
}

TEST(CacheTest, FlushEmptiesEverything) {
  Cache c(tiny());
  for (std::uint64_t l = 0; l < 4; ++l) c.insert(l);
  c.flush();
  for (std::uint64_t l = 0; l < 4; ++l) EXPECT_FALSE(c.contains(l));
}

TEST(CacheTest, GeometryDerivation) {
  Cache c(arch::CacheGeometry{.size_bytes = 32 * 1024, .associativity = 8,
                              .line_bytes = 64});
  EXPECT_EQ(c.num_sets(), 64u);
  EXPECT_EQ(c.ways(), 8u);
}

TEST(CacheTest, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache c(arch::CacheGeometry{.size_bytes = 4096, .associativity = 4,
                              .line_bytes = 64});  // 64 lines
  util::Xoshiro256 rng(42);
  // 32 distinct lines mapped over 16 sets x 4 ways: fits.
  for (std::uint64_t l = 0; l < 32; ++l) {
    if (!c.probe(l)) c.insert(l);
  }
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t l = rng.below(32);
    EXPECT_TRUE(c.probe(l)) << "line " << l;
  }
}

TEST(CacheTest, CyclicSweepLargerThanCacheAlwaysMisses) {
  Cache c(tiny());  // 4 lines capacity
  // Sweep 8 lines cyclically with LRU: every access misses.
  int misses = 0;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t l = 0; l < 8; ++l) {
      if (!c.probe(l)) {
        ++misses;
        c.insert(l);
      }
    }
  }
  EXPECT_EQ(misses, 80);
}

TEST(CacheDeathTest, DoubleInsertAborts) {
  Cache c(tiny());
  c.insert(5);
  EXPECT_DEATH(c.insert(5), "Invariant");
}

TEST(CacheDeathTest, BadGeometryAborts) {
  EXPECT_DEATH(Cache(arch::CacheGeometry{.size_bytes = 100,
                                         .associativity = 3,
                                         .line_bytes = 64}),
               "Precondition");
}

}  // namespace
}  // namespace spcd::sim
