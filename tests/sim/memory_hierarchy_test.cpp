#include "sim/memory_hierarchy.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spcd::sim {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : spec_(arch::tiny_test_machine()),
        topo_(spec_.topology),
        mh_(spec_, topo_) {}

  std::uint32_t read(arch::ContextId ctx, std::uint64_t line,
                     std::uint32_t home = 0) {
    return mh_.access(ctx, line, false, home, now_ += 1000);
  }
  std::uint32_t write(arch::ContextId ctx, std::uint64_t line,
                      std::uint32_t home = 0) {
    return mh_.access(ctx, line, true, home, now_ += 1000);
  }

  arch::MachineSpec spec_;
  arch::Topology topo_;  // 2 sockets x 2 cores x 2 smt
  MemoryHierarchy mh_;
  std::uint64_t now_ = 0;
};

TEST_F(HierarchyTest, ColdMissGoesToDram) {
  const auto lat = read(0, 100, /*home=*/0);
  EXPECT_EQ(mh_.counters().dram_local, 1u);
  EXPECT_EQ(mh_.counters().l3_misses, 1u);
  EXPECT_GE(lat, spec_.latency.dram_local);
}

TEST_F(HierarchyTest, RemoteHomeCostsMore) {
  const auto local = read(0, 100, /*home=*/0);
  const auto remote = read(0, 200, /*home=*/1);
  EXPECT_EQ(mh_.counters().dram_remote, 1u);
  EXPECT_GT(remote, local);
}

TEST_F(HierarchyTest, SecondAccessHitsL1) {
  read(0, 100);
  const auto lat = read(0, 100);
  EXPECT_EQ(lat, spec_.latency.l1_hit);
  EXPECT_EQ(mh_.counters().l1_hits, 1u);
}

TEST_F(HierarchyTest, SmtSiblingSharesL1) {
  read(0, 100);   // ctx 0 = core 0
  const auto lat = read(1, 100);  // ctx 1 = same core
  EXPECT_EQ(lat, spec_.latency.l1_hit);
}

TEST_F(HierarchyTest, SameSocketOtherCoreHitsL3) {
  read(0, 100);  // core 0 fills L1/L2/L3 of socket 0
  const auto lat = read(2, 100);  // ctx 2 = core 1, socket 0
  EXPECT_EQ(lat, spec_.latency.l3_hit);
  EXPECT_EQ(mh_.counters().l3_hits, 1u);
}

TEST_F(HierarchyTest, CrossSocketReadIsCacheToCache) {
  read(0, 100);
  const auto lat = read(4, 100);  // ctx 4 = socket 1
  EXPECT_EQ(mh_.counters().c2c_cross_socket, 1u);
  EXPECT_GE(lat, spec_.latency.c2c_cross_socket);
  // Both sockets now hold the line.
  EXPECT_TRUE(mh_.l3_holds(0, 100));
  EXPECT_TRUE(mh_.l3_holds(1, 100));
}

TEST_F(HierarchyTest, DirtyLineServedFromOwningCore) {
  write(0, 100);  // core 0 has it modified
  EXPECT_EQ(mh_.dirty_owner_of(100), 0);
  read(2, 100);   // core 1, same socket: must fetch from core 0
  EXPECT_EQ(mh_.counters().c2c_same_socket, 1u);
  EXPECT_EQ(mh_.dirty_owner_of(100), -1);  // written back, now shared
}

TEST_F(HierarchyTest, WriteInvalidatesOtherCopies) {
  read(0, 100);
  read(2, 100);
  read(4, 100);  // three cores share the line (two sockets)
  EXPECT_TRUE(mh_.core_holds(0, 100));
  EXPECT_TRUE(mh_.core_holds(1, 100));
  EXPECT_TRUE(mh_.core_holds(2, 100));

  write(0, 100);
  EXPECT_GE(mh_.counters().invalidations, 2u);
  EXPECT_TRUE(mh_.core_holds(0, 100));
  EXPECT_FALSE(mh_.core_holds(1, 100));
  EXPECT_FALSE(mh_.core_holds(2, 100));
  EXPECT_FALSE(mh_.l3_holds(1, 100));  // remote L3 copy killed too
  EXPECT_EQ(mh_.dirty_owner_of(100), 0);

  // The invalidated core misses on its next access (invalidation miss).
  const auto before = mh_.counters().l2_misses;
  read(2, 100);
  EXPECT_EQ(mh_.counters().l2_misses, before + 1);
}

TEST_F(HierarchyTest, WriteUpgradeOnOwnDirtyLineIsCheap) {
  write(0, 100);
  const auto lat = write(0, 100);
  EXPECT_EQ(lat, spec_.latency.l1_hit);  // no coherence action needed
}

TEST_F(HierarchyTest, InvariantsHoldUnderRandomTraffic) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto ctx = static_cast<arch::ContextId>(rng.below(8));
    const std::uint64_t line = rng.below(512);
    const bool is_write = rng.chance(0.3);
    const auto home = static_cast<std::uint32_t>(line % 2);
    mh_.access(ctx, line, is_write, home, now_ += 10);
  }
  EXPECT_EQ(mh_.check_invariants(), 0u);
}

TEST_F(HierarchyTest, DirectoryShrinksWhenLinesEvicted) {
  // Touch far more lines than the caches hold; untracked entries must be
  // erased, keeping the directory no larger than total cache capacity.
  for (std::uint64_t line = 0; line < 4096; ++line) read(0, line);
  const std::uint64_t total_lines =
      2 * (spec_.l1.num_lines() + spec_.l2.num_lines()) +
      2 * spec_.l3.num_lines();
  EXPECT_LE(mh_.directory_size(), total_lines);
  EXPECT_EQ(mh_.check_invariants(), 0u);
}

TEST_F(HierarchyTest, QueueingDelaysBackToBackDramBursts) {
  // Two accesses at the same instant: the second queues behind the first.
  const auto first = mh_.access(0, 1000, false, 0, /*now=*/0);
  const auto second = mh_.access(2, 2000, false, 0, /*now=*/0);
  EXPECT_GT(second, first);
  EXPECT_GT(mh_.dram_queue_cycles(), 0u);
}

TEST_F(HierarchyTest, NoQueueingWhenWellSpaced) {
  (void)mh_.access(0, 1000, false, 0, 0);
  (void)mh_.access(2, 2000, false, 0, 1000000);
  EXPECT_EQ(mh_.dram_queue_cycles(), 0u);
}

TEST_F(HierarchyTest, LinkQueueCountsCrossSocketBursts) {
  read(0, 100);
  // Cross-socket fetch bursts at the same time stamp.
  (void)mh_.access(4, 100, false, 0, now_);
  read(0, 200);
  (void)mh_.access(6, 200, false, 0, now_);
  EXPECT_GE(mh_.counters().c2c_cross_socket, 2u);
}

TEST_F(HierarchyTest, CountersSumConsistently) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    mh_.access(static_cast<arch::ContextId>(rng.below(8)), rng.below(256),
               rng.chance(0.25), 0, now_ += 50);
  }
  const auto& c = mh_.counters();
  EXPECT_EQ(c.accesses(), 5000u);
  EXPECT_EQ(c.l1_hits + c.l1_misses, c.accesses());
  EXPECT_EQ(c.l2_hits + c.l2_misses, c.l1_misses);
  EXPECT_EQ(c.l3_hits + c.l3_misses, c.l2_misses);
  EXPECT_EQ(c.c2c_cross_socket + c.dram_total(), c.l3_misses);
}

}  // namespace
}  // namespace spcd::sim
