#include "sim/energy.hpp"

#include <gtest/gtest.h>

namespace spcd::sim {
namespace {

TEST(EnergyTest, ZeroCountersGiveOnlyStaticEnergy) {
  const auto spec = arch::dual_xeon_e5_2650();
  PerfCounters c;
  const auto e = compute_energy(c, /*exec_seconds=*/1.0, spec);
  EXPECT_DOUBLE_EQ(e.package_joules,
                   2.0 * spec.energy.pkg_static_watts_per_socket);
  EXPECT_DOUBLE_EQ(e.dram_joules,
                   2.0 * spec.energy.dram_background_watts_per_node);
}

TEST(EnergyTest, ZeroTimeGivesOnlyDynamicEnergy) {
  const auto spec = arch::dual_xeon_e5_2650();
  PerfCounters c;
  c.busy_cycles = 1'000'000;
  const auto e = compute_energy(c, 0.0, spec);
  EXPECT_NEAR(e.package_joules,
              1e6 * spec.energy.core_nj_per_cycle * 1e-9, 1e-12);
  EXPECT_DOUBLE_EQ(e.dram_joules, 0.0);
}

TEST(EnergyTest, DramAccessesAddDramEnergy) {
  const auto spec = arch::dual_xeon_e5_2650();
  PerfCounters base, with;
  with.dram_local = 1000;
  with.dram_remote = 500;
  const auto e0 = compute_energy(base, 0.01, spec);
  const auto e1 = compute_energy(with, 0.01, spec);
  EXPECT_NEAR(e1.dram_joules - e0.dram_joules,
              1500 * spec.energy.dram_access_nj * 1e-9, 1e-12);
}

TEST(EnergyTest, CrossSocketTrafficCostsMoreThanOnChip) {
  const auto spec = arch::dual_xeon_e5_2650();
  PerfCounters onchip, offchip;
  onchip.c2c_same_socket = 10000;
  offchip.c2c_cross_socket = 10000;
  const auto e_on = compute_energy(onchip, 0.0, spec);
  const auto e_off = compute_energy(offchip, 0.0, spec);
  EXPECT_GT(e_off.package_joules, e_on.package_joules);
}

TEST(EnergyTest, EnergyPerInstruction) {
  EnergyBreakdown e;
  e.package_joules = 1.0;
  e.dram_joules = 0.1;
  EXPECT_DOUBLE_EQ(e.package_epi_nj(1'000'000'000), 1.0);
  EXPECT_DOUBLE_EQ(e.dram_epi_nj(1'000'000'000), 0.1);
  EXPECT_EQ(e.package_epi_nj(0), 0.0);
}

TEST(EnergyTest, FasterRunWithSameWorkUsesLessTotalEnergy) {
  // The paper's core energy argument: reducing execution time cuts the
  // static share even when the dynamic work is identical.
  const auto spec = arch::dual_xeon_e5_2650();
  PerfCounters c;
  c.busy_cycles = 5'000'000'000;
  c.reads = 100'000'000;
  const auto slow = compute_energy(c, 0.100, spec);
  const auto fast = compute_energy(c, 0.083, spec);
  EXPECT_LT(fast.package_joules, slow.package_joules);
  EXPECT_LT(fast.dram_joules, slow.dram_joules);
}

}  // namespace
}  // namespace spcd::sim
