#include "sim/sharded_line_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "sim/line_directory.hpp"
#include "util/rng.hpp"

namespace spcd::sim {
namespace {

TEST(ShardedLineMapTest, MatchesPlainLineMapAtAnyPartitionCount) {
  // Drive the same random insert/lookup/erase sequence through a plain
  // LineMap and sharded maps at several widths; every observable result
  // must agree (the "semantically transparent" contract the byte-identity
  // gate rests on).
  for (const unsigned partitions : {1u, 3u, 8u}) {
    LineMap<std::uint64_t> plain;
    ShardedLineMap<std::uint64_t> sharded(partitions);
    ASSERT_EQ(sharded.num_partitions(), partitions);
    util::Xoshiro256 rng(99);
    for (int i = 0; i < 20'000; ++i) {
      const std::uint64_t key = rng.below(4'000);
      switch (rng.below(4)) {
        case 0:
        case 1:  // insert/update
          plain[key] = static_cast<std::uint64_t>(i);
          sharded[key] = static_cast<std::uint64_t>(i);
          break;
        case 2: {  // lookup
          const std::uint64_t* a = plain.find(key);
          const std::uint64_t* b = sharded.find(key);
          ASSERT_EQ(a == nullptr, b == nullptr);
          if (a != nullptr) {
            EXPECT_EQ(*a, *b);
          }
          break;
        }
        case 3:  // erase
          plain.erase(key);
          sharded.erase(key);
          break;
      }
      if (i % 1'000 == 0) {
        ASSERT_EQ(plain.size(), sharded.size());
      }
    }
    EXPECT_EQ(plain.size(), sharded.size());
    // Aggregated contents agree (for_each visit order may differ).
    std::map<std::uint64_t, std::uint64_t> got_plain, got_sharded;
    plain.for_each([&](std::uint64_t k, const std::uint64_t& v) {
      got_plain[k] = v;
    });
    sharded.for_each([&](std::uint64_t k, const std::uint64_t& v) {
      got_sharded[k] = v;
    });
    EXPECT_EQ(got_plain, got_sharded);
  }
}

TEST(ShardedLineMapTest, KeysLiveInTheirHomePartitionOnly) {
  ShardedLineMap<int> map(4);
  for (std::uint64_t key = 0; key < 1'000; ++key) {
    map[key] = static_cast<int>(key);
  }
  std::size_t total = 0;
  for (unsigned p = 0; p < map.num_partitions(); ++p) {
    map.partition(p).for_each([&](std::uint64_t k, const int&) {
      EXPECT_EQ(map.partition_of(k), p) << "key " << k;
    });
    total += map.partition(p).size();
  }
  EXPECT_EQ(total, map.size());
  EXPECT_EQ(total, 1'000u);
}

TEST(ShardedLineMapTest, ReferencesSurviveErasesInOtherPartitions) {
  // Tombstone semantics are inherited per partition: erasing keys (and the
  // accompanying rehash-free tombstoning) in *other* partitions must not
  // move an entry we hold a reference to.
  ShardedLineMap<int> map(4);
  const std::uint64_t held_key = 17;
  for (std::uint64_t key = 0; key < 64; ++key) map[key] = static_cast<int>(key);
  int& held = map[held_key];
  const unsigned home = map.partition_of(held_key);
  for (std::uint64_t key = 0; key < 64; ++key) {
    if (map.partition_of(key) != home) map.erase(key);
  }
  EXPECT_EQ(held, 17);
  held = -1;
  EXPECT_EQ(*map.find(held_key), -1);
}

TEST(ShardedLineMapTest, DefaultPartitionCountFollowsEngineShards) {
  ::setenv("SPCD_ENGINE_SHARDS", "3", 1);
  ShardedLineMap<int> map;
  EXPECT_EQ(map.num_partitions(), 3u);
  ::unsetenv("SPCD_ENGINE_SHARDS");
  ShardedLineMap<int> serial;
  EXPECT_EQ(serial.num_partitions(), 1u);
}

TEST(ShardedLineMapTest, ReserveAndPrefetchAreUsableAtAnyWidth) {
  ShardedLineMap<int> map(5, /*expected=*/10'000);
  for (std::uint64_t key = 0; key < 5'000; ++key) {
    map.prefetch(key);  // cache hint only; must not create entries
  }
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t key = 0; key < 5'000; ++key) map[key] = 1;
  EXPECT_EQ(map.size(), 5'000u);
}

}  // namespace
}  // namespace spcd::sim
