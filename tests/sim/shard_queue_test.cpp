#include "sim/shard_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace spcd::sim {
namespace {

TEST(ShardSequencedQueueTest, DrainVisitsLanesInShardSequenceOrder) {
  ShardSequencedQueue<int> queue(3);
  // Interleave pushes across lanes; drain order must be (shard, seq), not
  // arrival order.
  queue.push(2, 20);
  queue.push(0, 1);
  queue.push(1, 10);
  queue.push(0, 2);
  queue.push(2, 21);
  queue.push(1, 11);
  std::vector<std::pair<unsigned, int>> seen;
  queue.drain([&seen](unsigned s, int v) { seen.emplace_back(s, v); });
  const std::vector<std::pair<unsigned, int>> expected{
      {0, 1}, {0, 2}, {1, 10}, {1, 11}, {2, 20}, {2, 21}};
  EXPECT_EQ(seen, expected);
}

TEST(ShardSequencedQueueTest, DrainEmptiesAndIsRepeatable) {
  ShardSequencedQueue<int> queue(2);
  queue.push(0, 1);
  queue.push(1, 2);
  EXPECT_EQ(queue.pending(), 2u);
  int count = 0;
  queue.drain([&count](unsigned, int) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(queue.pending(), 0u);
  // A second drain sees nothing; new pushes land in the next drain.
  queue.drain([&count](unsigned, int) { ++count; });
  EXPECT_EQ(count, 2);
  queue.push(1, 3);
  queue.drain([&count](unsigned, int) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(ShardSequencedQueueTest, PerLanePushOrderSurvivesConcurrentProducers) {
  // One producer thread per lane (the engine's arrangement): each lane's
  // items must drain in that producer's push order, for any host schedule.
  constexpr unsigned kShards = 4;
  constexpr int kItems = 2'000;
  ShardSequencedQueue<int> queue(kShards);
  std::vector<std::thread> producers;
  for (unsigned s = 0; s < kShards; ++s) {
    producers.emplace_back([&queue, s] {
      for (int i = 0; i < kItems; ++i) {
        queue.push(s, static_cast<int>(s) * kItems + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(queue.pending(), static_cast<std::size_t>(kShards) * kItems);
  std::vector<int> seen;
  queue.drain([&seen](unsigned, int v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kShards) * kItems);
  // Deterministic result: lane 0's 0..N-1, then lane 1's N..2N-1, ...
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int>(i));
  }
}

TEST(ShardSequencedQueueTest, MoveOnlyItemsAreSupported) {
  ShardSequencedQueue<std::unique_ptr<int>> queue(2);
  queue.push(1, std::make_unique<int>(42));
  int got = 0;
  queue.drain([&got](unsigned, std::unique_ptr<int>& item) { got = *item; });
  EXPECT_EQ(got, 42);
}

TEST(ShardSequencedQueueTest, DeathOnOutOfRangeLane) {
  ShardSequencedQueue<int> queue(2);
  EXPECT_DEATH(queue.push(2, 1), "Precondition");
}

}  // namespace
}  // namespace spcd::sim
