#include "arch/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spcd::arch {
namespace {

Topology xeon() {
  return Topology(TopologySpec{.sockets = 2, .cores_per_socket = 8,
                               .smt_per_core = 2});
}

TEST(TopologyTest, CountsMatchSpec) {
  const auto t = xeon();
  EXPECT_EQ(t.num_sockets(), 2u);
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.num_contexts(), 32u);
}

TEST(TopologyTest, ContextLayoutIsSocketMajor) {
  const auto t = xeon();
  // ctx 0/1 = socket 0 core 0; ctx 16 starts socket 1.
  EXPECT_EQ(t.socket_of(0), 0u);
  EXPECT_EQ(t.socket_of(15), 0u);
  EXPECT_EQ(t.socket_of(16), 1u);
  EXPECT_EQ(t.socket_of(31), 1u);
  EXPECT_EQ(t.core_of(0), 0u);
  EXPECT_EQ(t.core_of(1), 0u);
  EXPECT_EQ(t.core_of(2), 1u);
  EXPECT_EQ(t.core_of(31), 15u);
  EXPECT_EQ(t.smt_slot_of(0), 0u);
  EXPECT_EQ(t.smt_slot_of(1), 1u);
}

TEST(TopologyTest, SocketOfCore) {
  const auto t = xeon();
  EXPECT_EQ(t.socket_of_core(0), 0u);
  EXPECT_EQ(t.socket_of_core(7), 0u);
  EXPECT_EQ(t.socket_of_core(8), 1u);
}

TEST(TopologyTest, ContextsOfCoreAreSiblings) {
  const auto t = xeon();
  const auto sibs = t.contexts_of_core(5);
  ASSERT_EQ(sibs.size(), 2u);
  EXPECT_EQ(sibs[0], 10u);
  EXPECT_EQ(sibs[1], 11u);
  EXPECT_EQ(t.core_of(sibs[0]), t.core_of(sibs[1]));
}

TEST(TopologyTest, CoresOfSocket) {
  const auto t = xeon();
  const auto cores = t.cores_of_socket(1);
  ASSERT_EQ(cores.size(), 8u);
  EXPECT_EQ(cores.front(), 8u);
  EXPECT_EQ(cores.back(), 15u);
}

TEST(TopologyTest, ProximityClassification) {
  const auto t = xeon();
  EXPECT_EQ(t.proximity(3, 3), Proximity::kSameContext);
  EXPECT_EQ(t.proximity(0, 1), Proximity::kSameCore);
  EXPECT_EQ(t.proximity(0, 2), Proximity::kSameSocket);
  EXPECT_EQ(t.proximity(0, 16), Proximity::kCrossSocket);
  EXPECT_EQ(t.proximity(16, 0), Proximity::kCrossSocket);
}

TEST(TopologyTest, ProximityIsSymmetric) {
  const auto t = xeon();
  for (ContextId a = 0; a < t.num_contexts(); ++a) {
    for (ContextId b = 0; b < t.num_contexts(); ++b) {
      EXPECT_EQ(t.proximity(a, b), t.proximity(b, a));
    }
  }
}

TEST(TopologyTest, ArityPathMultipliesToContexts) {
  const auto t = xeon();
  const auto path = t.arity_path();
  std::uint64_t product = 1;
  for (auto a : path) product *= a;
  EXPECT_EQ(product, t.num_contexts());
}

TEST(TopologyTest, AllContextsPartitionIntoCores) {
  const auto t = xeon();
  std::set<ContextId> seen;
  for (CoreId c = 0; c < t.num_cores(); ++c) {
    for (auto ctx : t.contexts_of_core(c)) {
      EXPECT_TRUE(seen.insert(ctx).second) << "duplicate ctx " << ctx;
    }
  }
  EXPECT_EQ(seen.size(), t.num_contexts());
}

TEST(TopologyTest, SingleSocketNoSmt) {
  Topology t(TopologySpec{.sockets = 1, .cores_per_socket = 4,
                          .smt_per_core = 1});
  EXPECT_EQ(t.num_contexts(), 4u);
  EXPECT_EQ(t.proximity(0, 1), Proximity::kSameSocket);
  EXPECT_EQ(t.core_of(3), 3u);
}

TEST(TopologyTest, DescribeMentionsAllCoordinates) {
  const auto t = xeon();
  const auto s = t.describe(17);
  EXPECT_NE(s.find("ctx 17"), std::string::npos);
  EXPECT_NE(s.find("socket 1"), std::string::npos);
  EXPECT_NE(s.find("core 8"), std::string::npos);
  EXPECT_NE(s.find("smt 1"), std::string::npos);
}

TEST(TopologyDeathTest, OutOfRangeContextAborts) {
  const auto t = xeon();
  EXPECT_DEATH((void)t.socket_of(32), "Precondition");
}

TEST(TopologyTest, NumaHopsIsRingDistance) {
  Topology t(TopologySpec{.sockets = 8, .cores_per_socket = 64,
                          .smt_per_core = 2});
  EXPECT_EQ(t.numa_hops(3, 3), 0u);
  EXPECT_EQ(t.numa_hops(0, 1), 1u);
  EXPECT_EQ(t.numa_hops(0, 7), 1u);  // the ring wraps
  EXPECT_EQ(t.numa_hops(1, 3), 2u);
  EXPECT_EQ(t.numa_hops(0, 4), 4u);  // opposite corner: sockets/2
  for (SocketId a = 0; a < 8; ++a) {
    for (SocketId b = 0; b < 8; ++b) {
      EXPECT_EQ(t.numa_hops(a, b), t.numa_hops(b, a));
      EXPECT_LE(t.numa_hops(a, b), 4u);
    }
  }
}

TEST(TopologyTest, TwoSocketMachinesNeverExceedOneHop) {
  const auto t = xeon();
  EXPECT_EQ(t.numa_hops(0, 0), 0u);
  EXPECT_EQ(t.numa_hops(0, 1), 1u);
  EXPECT_EQ(t.numa_hops(1, 0), 1u);
}

TEST(TopologyTest, DeepNumaLayoutStaysConsistentAt1024Contexts) {
  Topology t(TopologySpec{.sockets = 8, .cores_per_socket = 64,
                          .smt_per_core = 2});
  EXPECT_EQ(t.num_contexts(), 1024u);
  EXPECT_EQ(t.socket_of(0), 0u);
  EXPECT_EQ(t.socket_of(1023), 7u);
  EXPECT_EQ(t.proximity(0, 1), Proximity::kSameCore);
  EXPECT_EQ(t.proximity(0, 2), Proximity::kSameSocket);
  EXPECT_EQ(t.proximity(0, 128), Proximity::kCrossSocket);
  const auto arities = t.arity_path();
  ASSERT_EQ(arities.size(), 3u);
  EXPECT_EQ(arities[0], 2u);   // SMT
  EXPECT_EQ(arities[1], 64u);  // cores per socket
  EXPECT_EQ(arities[2], 8u);   // sockets
}

}  // namespace
}  // namespace spcd::arch
