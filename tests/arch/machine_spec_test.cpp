#include "arch/machine_spec.hpp"

#include <gtest/gtest.h>

namespace spcd::arch {
namespace {

TEST(MachineSpecTest, XeonMatchesPaperTableI) {
  const auto m = dual_xeon_e5_2650();
  EXPECT_EQ(m.topology.sockets, 2u);
  EXPECT_EQ(m.topology.cores_per_socket, 8u);
  EXPECT_EQ(m.topology.smt_per_core, 2u);
  EXPECT_DOUBLE_EQ(m.freq_hz, 2.0e9);
  EXPECT_EQ(m.l1.size_bytes, 32u * 1024u);
  EXPECT_EQ(m.l2.size_bytes, 256u * 1024u);
  EXPECT_EQ(m.l3.size_bytes, 20u * 1024u * 1024u);
  EXPECT_EQ(m.page_bytes, 4096u);
  EXPECT_EQ(m.line_bytes(), 64u);
}

TEST(MachineSpecTest, CacheGeometryDerivedQuantities) {
  CacheGeometry g{.size_bytes = 32 * 1024, .associativity = 8,
                  .line_bytes = 64};
  EXPECT_EQ(g.num_lines(), 512u);
  EXPECT_EQ(g.num_sets(), 64u);
}

TEST(MachineSpecTest, LatencyOrderingIsSane) {
  const auto m = dual_xeon_e5_2650();
  const auto& l = m.latency;
  EXPECT_LT(l.l1_hit, l.l2_hit);
  EXPECT_LT(l.l2_hit, l.l3_hit);
  EXPECT_LT(l.l3_hit, l.c2c_same_socket);
  EXPECT_LT(l.c2c_same_socket, l.dram_local);
  EXPECT_LT(l.dram_local, l.dram_remote);
  EXPECT_LT(l.injected_fault, l.minor_fault);  // fast restore path
}

TEST(MachineSpecTest, TinyMachineIsSmall) {
  const auto m = tiny_test_machine();
  Topology t(m.topology);
  EXPECT_EQ(t.num_contexts(), 8u);
  EXPECT_LT(m.l3.size_bytes, 1024u * 1024u);
  // TLB geometry must divide evenly.
  EXPECT_EQ(m.tlb.entries % m.tlb.associativity, 0u);
}

TEST(MachineSpecTest, SingleSocketHasNoSmt) {
  const auto m = single_socket_machine();
  EXPECT_EQ(m.topology.sockets, 1u);
  EXPECT_EQ(m.topology.smt_per_core, 1u);
}

TEST(MachineSpecTest, NumaPresetsScaleTo1024PlusContexts) {
  const auto quad = quad_socket_numa();
  EXPECT_EQ(Topology(quad.topology).num_contexts(), 256u);
  const auto octo = octo_socket_numa();
  EXPECT_EQ(Topology(octo.topology).num_contexts(), 1024u);
  const auto smt4 = octo_socket_numa_smt4();
  EXPECT_EQ(Topology(smt4.topology).num_contexts(), 2048u);
  EXPECT_EQ(smt4.topology.smt_per_core, 4u);
  EXPECT_GT(smt4.smt_penalty, octo.smt_penalty);
}

TEST(MachineSpecTest, NumaPresetsChargeForExtraHops) {
  // The 2-socket part must keep the flat model (extras zero), the big
  // boards must make multi-hop traffic strictly worse than one hop.
  const auto xeon = dual_xeon_e5_2650();
  EXPECT_EQ(xeon.latency.c2c_hop_extra, 0u);
  EXPECT_EQ(xeon.latency.dram_hop_extra, 0u);
  for (const auto& m : {quad_socket_numa(), octo_socket_numa()}) {
    EXPECT_GT(m.latency.c2c_hop_extra, 0u) << m.name;
    EXPECT_GT(m.latency.dram_hop_extra, 0u) << m.name;
    EXPECT_GT(m.latency.c2c_cross_socket, xeon.latency.c2c_same_socket)
        << m.name;
  }
}

TEST(MachineSpecTest, EnergyConstantsArePositive) {
  const auto e = dual_xeon_e5_2650().energy;
  EXPECT_GT(e.pkg_static_watts_per_socket, 0.0);
  EXPECT_GT(e.core_nj_per_cycle, 0.0);
  EXPECT_GT(e.l1_access_nj, 0.0);
  EXPECT_GT(e.dram_access_nj, 0.0);
  EXPECT_LT(e.l1_access_nj, e.l2_access_nj);
  EXPECT_LT(e.l2_access_nj, e.l3_access_nj);
  EXPECT_LT(e.onchip_transfer_nj, e.offchip_transfer_nj);
}

}  // namespace
}  // namespace spcd::arch
