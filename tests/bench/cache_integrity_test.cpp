// Crash-safety and integrity of the results cache: save_cache_file writes
// tmp+rename with a checksum trailer, load_cache_file verifies it, and any
// corruption (truncation, bit flips, missing trailer) is rejected cleanly
// so the pipeline recomputes instead of parsing garbage.
#include "bench/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "workloads/npb.hpp"

namespace spcd::bench {
namespace {

PipelineResults make_results() {
  PipelineResults r;
  r.repetitions = 1;
  r.scale = 0.5;
  const core::MappingPolicy policies[] = {
      core::MappingPolicy::kOs, core::MappingPolicy::kRandom,
      core::MappingPolicy::kOracle, core::MappingPolicy::kSpcd};
  std::uint64_t salt = 1;
  for (const auto& info : workloads::nas_benchmarks()) {
    for (const auto policy : policies) {
      core::RunMetrics m;
      m.exec_seconds = 0.001 * static_cast<double>(salt);
      m.instructions = 1000 * salt;
      m.l2_mpki = 0.25 * static_cast<double>(salt);
      m.c2c_transactions = 7 * salt;
      m.migration_events = static_cast<std::uint32_t>(salt % 5);
      m.minor_faults = 13 * salt;
      m.injected_faults = 3 * salt;
      ++salt;
      r.results[info.name][policy] = {m};
    }
  }
  return r;
}

std::string path_in_tmp(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

PipelineResults fresh_shell() {
  PipelineResults r;
  r.repetitions = 1;
  r.scale = 0.5;
  return r;
}

TEST(CacheIntegrityTest, SaveLoadRoundTripsExactly) {
  const PipelineResults original = make_results();
  const std::string path = path_in_tmp("cache_roundtrip");
  ASSERT_TRUE(save_cache_file(path, original));

  PipelineResults loaded = fresh_shell();
  ASSERT_TRUE(load_cache_file(path, loaded));
  EXPECT_EQ(serialize_cache(loaded), serialize_cache(original));
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, SaveLeavesNoTmpFileBehind) {
  const std::string path = path_in_tmp("cache_no_tmp");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, FileIsPayloadPlusOneTrailerLine) {
  // The payload bytes on disk are exactly serialize_cache() — the trailer
  // is the only file-level addition, keeping the v3 format intact.
  const PipelineResults original = make_results();
  const std::string path = path_in_tmp("cache_layout");
  ASSERT_TRUE(save_cache_file(path, original));
  const std::string contents = read_file(path);
  const std::string payload = serialize_cache(original);
  ASSERT_GT(contents.size(), payload.size());
  EXPECT_EQ(contents.substr(0, payload.size()), payload);
  EXPECT_EQ(contents.substr(payload.size(), 5), "#crc ");
  EXPECT_EQ(contents.back(), '\n');
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, MissingFileFailsSilently) {
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path_in_tmp("cache_does_not_exist"), shell));
}

TEST(CacheIntegrityTest, TruncatedCacheIsRejected) {
  const std::string path = path_in_tmp("cache_truncated");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  const std::string contents = read_file(path);

  // Truncation inside the payload (the trailer line is lost entirely).
  write_file(path, contents.substr(0, contents.size() / 2));
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));

  // Truncation that cuts rows but keeps a stale trailer.
  const std::size_t marker = contents.rfind("#crc ");
  ASSERT_NE(marker, std::string::npos);
  write_file(path, contents.substr(0, marker / 2) + contents.substr(marker));
  shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, BitFlipIsRejected) {
  const std::string path = path_in_tmp("cache_bitflip");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  std::string contents = read_file(path);
  contents[contents.size() / 3] ^= 0x01;
  write_file(path, contents);
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, MissingTrailerIsRejected) {
  // A legacy cache (pure payload, no trailer) must be discarded for
  // recompute, not half-trusted.
  const std::string path = path_in_tmp("cache_no_trailer");
  write_file(path, serialize_cache(make_results()));
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, StaleParametersAreRejected) {
  const std::string path = path_in_tmp("cache_stale");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  PipelineResults shell = fresh_shell();
  shell.repetitions = 2;  // cache was written with 1
  EXPECT_FALSE(load_cache_file(path, shell));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Every rejection path must explain itself through util::log so operators
// can tell a recompute-from-corruption apart from a cold cache.
// ---------------------------------------------------------------------------

std::mutex g_sink_mutex;
std::vector<std::string> g_sink_lines;

void recording_sink(const char* level, const char* text) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink_lines.push_back(std::string(level) + ": " + text);
}

class CacheWarningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      const std::lock_guard<std::mutex> lock(g_sink_mutex);
      g_sink_lines.clear();
    }
    util::set_log_sink(&recording_sink);
  }
  void TearDown() override { util::set_log_sink(nullptr); }
  /// True when some captured warn-level line contains `phrase`.
  static bool warned(const std::string& phrase) {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    for (const auto& line : g_sink_lines) {
      if (line.rfind("WARN: ", 0) == 0 &&
          line.find(phrase) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
  static std::size_t captured() {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    return g_sink_lines.size();
  }
};

TEST_F(CacheWarningTest, MissingTrailerWarns) {
  const std::string path = path_in_tmp("warn_no_trailer");
  write_file(path, serialize_cache(make_results()));
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  EXPECT_TRUE(warned("no integrity trailer"));
  std::remove(path.c_str());
}

TEST_F(CacheWarningTest, MalformedTrailerWarns) {
  const std::string path = path_in_tmp("warn_bad_trailer");
  write_file(path, serialize_cache(make_results()) + "#crc nonsense\n");
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  EXPECT_TRUE(warned("malformed integrity trailer"));
  std::remove(path.c_str());
}

TEST_F(CacheWarningTest, ChecksumFailureWarns) {
  const std::string path = path_in_tmp("warn_bitflip");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  std::string contents = read_file(path);
  contents[contents.size() / 3] ^= 0x01;
  write_file(path, contents);
  PipelineResults shell = fresh_shell();
  EXPECT_FALSE(load_cache_file(path, shell));
  EXPECT_TRUE(warned("failed its integrity check"));
  std::remove(path.c_str());
}

TEST_F(CacheWarningTest, StaleParametersWarn) {
  // Checksum passes but the header no longer matches the experiment: the
  // payload-level rejection must warn too, not silently recompute.
  const std::string path = path_in_tmp("warn_stale");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  PipelineResults shell = fresh_shell();
  shell.repetitions = 2;  // cache was written with 1
  EXPECT_FALSE(load_cache_file(path, shell));
  EXPECT_TRUE(warned("does not match this experiment"));
  std::remove(path.c_str());
}

TEST_F(CacheWarningTest, CleanLoadsStayQuiet) {
  const std::string path = path_in_tmp("warn_clean");
  ASSERT_TRUE(save_cache_file(path, make_results()));
  PipelineResults shell = fresh_shell();
  EXPECT_TRUE(load_cache_file(path, shell));
  EXPECT_EQ(captured(), 0u);
  std::remove(path.c_str());
}

TEST(CacheIntegrityTest, SaveOverwritesAnExistingCacheAtomically) {
  const std::string path = path_in_tmp("cache_overwrite");
  PipelineResults first = make_results();
  ASSERT_TRUE(save_cache_file(path, first));

  PipelineResults second = make_results();
  second.results.begin()->second.begin()->second[0].instructions = 999'999;
  ASSERT_TRUE(save_cache_file(path, second));

  PipelineResults loaded = fresh_shell();
  ASSERT_TRUE(load_cache_file(path, loaded));
  EXPECT_EQ(serialize_cache(loaded), serialize_cache(second));
  EXPECT_NE(serialize_cache(loaded), serialize_cache(first));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spcd::bench
