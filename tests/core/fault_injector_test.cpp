#include "core/fault_injector.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace spcd::core {
namespace {

/// Workload whose threads loop over a page range long enough for several
/// injector periods.
class PageLooper final : public sim::Workload {
 public:
  PageLooper(std::uint32_t threads, std::uint32_t pages, std::uint32_t reps,
             std::uint32_t cycles_per_op)
      : threads_(threads), pages_(pages), reps_(reps), cycles_(cycles_per_op) {}

  std::string name() const override { return "page-looper"; }
  std::uint32_t num_threads() const override { return threads_; }
  std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t tid,
                                                  std::uint64_t) override {
    class P final : public sim::ThreadProgram {
     public:
      P(std::uint32_t tid, std::uint32_t pages, std::uint32_t reps,
        std::uint32_t cycles)
          : base_(0x100000ULL + tid * 0x100000ULL), pages_(pages),
            total_(pages * reps), cycles_(cycles) {}
      sim::Op next() override {
        if (count_ >= total_) return sim::Op::finish();
        const std::uint64_t addr = base_ + (count_ % pages_) * 4096;
        ++count_;
        return sim::Op::access(addr, false, 1, cycles_);
      }

     private:
      std::uint64_t base_;
      std::uint32_t pages_, total_, cycles_;
      std::uint32_t count_ = 0;
    };
    return std::make_unique<P>(tid, pages_, reps_, cycles_);
  }

 private:
  std::uint32_t threads_, pages_, reps_, cycles_;
};

TEST(FaultInjectorTest, PlannedBatchFollowsDeficitLaw) {
  SpcdConfig config;
  config.extra_fault_ratio = 0.10;
  config.min_pages_floor = 0;
  config.min_sample_frac = 0.0;
  FaultInjector injector(config, 1);

  mem::FrameAllocator frames(1);
  mem::AddressSpace as(frames, 12);
  // 90 minor faults -> desired injected = 90 * 0.1/0.9 = 10.
  for (std::uint64_t p = 0; p < 90; ++p) {
    (void)as.translate(p << 12, 0, 0, 0, 0);
  }
  EXPECT_EQ(injector.planned_batch(as), 10u);
}

TEST(FaultInjectorTest, ZeroRatioPlansNothing) {
  SpcdConfig config;
  config.extra_fault_ratio = 0.0;
  FaultInjector injector(config, 1);
  mem::FrameAllocator frames(1);
  mem::AddressSpace as(frames, 12);
  (void)as.translate(0x1000, 0, 0, 0, 0);
  EXPECT_EQ(injector.planned_batch(as), 0u);
}

TEST(FaultInjectorTest, FloorKeepsSamplingAlive) {
  SpcdConfig config;
  config.extra_fault_ratio = 0.10;
  config.min_pages_floor = 4;
  config.min_sample_frac = 0.01;
  config.startup_boost = 1.0;
  FaultInjector injector(config, 1);
  mem::FrameAllocator frames(1);
  mem::AddressSpace as(frames, 12);
  for (std::uint64_t p = 0; p < 1000; ++p) {
    (void)as.translate(p << 12, 0, 0, 0, 0);
  }
  // Deficit would allow ~111, floor is 10 -> deficit wins first...
  const auto first = injector.planned_batch(as);
  EXPECT_GE(first, 10u);
  EXPECT_LE(first, 200u);
}

TEST(FaultInjectorTest, FloorIsCappedForHugeFootprints) {
  SpcdConfig config;
  config.extra_fault_ratio = 0.0;  // isolate the floor term... ratio 0
  FaultInjector injector(config, 1);
  mem::FrameAllocator frames(1);
  mem::AddressSpace as(frames, 12);
  (void)as.translate(0, 0, 0, 0, 0);
  // ratio 0 -> planned 0 regardless of floor (detection disabled).
  EXPECT_EQ(injector.planned_batch(as), 0u);
}

TEST(FaultInjectorTest, EndToEndRatioApproximatesTarget) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  PageLooper wl(4, /*pages=*/200, /*reps=*/200, /*cycles_per_op=*/300);
  sim::Engine engine(machine, as, wl, {0, 2, 4, 6});

  SpcdConfig config;
  config.injector_period = 100000;
  config.min_sample_frac = 0.0;  // pure ratio control for this test
  config.min_pages_floor = 0;
  FaultInjector injector(config, 42);
  injector.install(engine);
  engine.run();

  EXPECT_GT(injector.wakeups(), 10u);
  EXPECT_GT(as.injected_faults(), 0u);
  const double ratio =
      static_cast<double>(as.injected_faults()) /
      static_cast<double>(as.injected_faults() + as.minor_faults());
  EXPECT_GT(ratio, 0.04);
  EXPECT_LT(ratio, 0.16);
  // Shootdowns happened for pages that were TLB-resident.
  EXPECT_GT(engine.counters().tlb_shootdowns, 0u);
  // The injector charged its work as detection overhead.
  EXPECT_GT(engine.counters().spcd_detection_cycles, 0u);
}

TEST(FaultInjectorTest, StartupBoostFrontLoadsSampling) {
  SpcdConfig config;
  config.extra_fault_ratio = 0.10;
  config.min_sample_frac = 0.01;
  config.startup_boost = 3.0;
  config.startup_wakeups = 8;
  mem::FrameAllocator frames(1);
  mem::AddressSpace as(frames, 12);
  for (std::uint64_t p = 0; p < 10000; ++p) {
    (void)as.translate(p << 12, 0, 0, 0, 0);
  }
  FaultInjector boosted(config, 1);
  config.startup_boost = 1.0;
  FaultInjector flat(config, 1);
  // Deficit dominates here (10000 minor faults); drain it first.
  // Instead compare the floor directly with zero deficit:
  SpcdConfig floor_only = config;
  floor_only.extra_fault_ratio = 1e-9;  // ~zero desired
  floor_only.startup_boost = 3.0;
  FaultInjector boosted2(floor_only, 1);
  floor_only.startup_boost = 1.0;
  FaultInjector flat2(floor_only, 1);
  EXPECT_GT(boosted2.planned_batch(as), flat2.planned_batch(as));
}

}  // namespace
}  // namespace spcd::core
