#include "core/spcd_detector.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

mem::FaultEvent fault(std::uint64_t vaddr, std::uint32_t tid,
                      util::Cycles time,
                      mem::FaultKind kind = mem::FaultKind::kFirstTouch) {
  mem::FaultEvent e;
  e.vaddr = vaddr;
  e.vpn = vaddr >> 12;
  e.tid = tid;
  e.time = time;
  e.kind = kind;
  return e;
}

TEST(SpcdDetectorTest, ReproducesPaperFigure3Timeline) {
  // Figure 3: thread 0 faults on page X (first touch, recorded); later the
  // present bit is cleared; thread 1 faults on X -> cell (0,1) incremented.
  SpcdConfig config;
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 100));
  EXPECT_EQ(detector.matrix().at(0, 1), 0u);
  detector.on_fault(fault(0x1008, 1, 200, mem::FaultKind::kInjected));
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
  EXPECT_EQ(detector.communication_events(), 1u);
}

TEST(SpcdDetectorTest, CostIsTheConfiguredHookCost) {
  SpcdConfig config;
  config.fault_hook_cost = 123;
  SpcdDetector detector(config, 2);
  EXPECT_EQ(detector.on_fault(fault(0x1000, 0, 1)), 123u);
}

TEST(SpcdDetectorTest, SamePageRepeatedBySameThreadIsNotCommunication) {
  SpcdDetector detector(SpcdConfig{}, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 0, 2));
  detector.on_fault(fault(0x1000, 0, 3));
  EXPECT_EQ(detector.matrix().total(), 0u);
  EXPECT_EQ(detector.faults_seen(), 3u);
}

TEST(SpcdDetectorTest, ThreeSharersAllPairsCounted) {
  SpcdDetector detector(SpcdConfig{}, 3);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 1, 2));  // (0,1)
  detector.on_fault(fault(0x1000, 2, 3));  // (2,0) and (2,1)
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
  EXPECT_EQ(detector.matrix().at(0, 2), 1u);
  EXPECT_EQ(detector.matrix().at(1, 2), 1u);
}

TEST(SpcdDetectorTest, GranularityFromConfigIsHonored) {
  SpcdConfig config;
  config.table.granularity_shift = 6;  // cache-line granularity
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1040, 1, 2));  // same page, different line
  EXPECT_EQ(detector.matrix().total(), 0u);
  detector.on_fault(fault(0x1010, 1, 3));  // same line as first fault
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
}

TEST(SpcdDetectorTest, TemporalWindowSuppresssesOldSharers) {
  SpcdConfig config;
  config.table.time_window = 50;
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 100));
  detector.on_fault(fault(0x1000, 1, 1000));  // too far apart
  EXPECT_EQ(detector.matrix().total(), 0u);
  detector.on_fault(fault(0x1000, 0, 1020));  // within window of thread 1
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
}

TEST(SpcdDetectorTest, OutOfRangeThreadIdIgnoredGracefully) {
  SpcdDetector detector(SpcdConfig{}, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 7, 2));  // tid beyond matrix
  EXPECT_EQ(detector.matrix().total(), 0u);
}

}  // namespace
}  // namespace spcd::core
