#include "core/spcd_detector.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

mem::FaultEvent fault(std::uint64_t vaddr, std::uint32_t tid,
                      util::Cycles time,
                      mem::FaultKind kind = mem::FaultKind::kFirstTouch) {
  mem::FaultEvent e;
  e.vaddr = vaddr;
  e.vpn = vaddr >> 12;
  e.tid = tid;
  e.time = time;
  e.kind = kind;
  return e;
}

TEST(SpcdDetectorTest, ReproducesPaperFigure3Timeline) {
  // Figure 3: thread 0 faults on page X (first touch, recorded); later the
  // present bit is cleared; thread 1 faults on X -> cell (0,1) incremented.
  SpcdConfig config;
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 100));
  EXPECT_EQ(detector.matrix().at(0, 1), 0u);
  detector.on_fault(fault(0x1008, 1, 200, mem::FaultKind::kInjected));
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
  EXPECT_EQ(detector.communication_events(), 1u);
}

TEST(SpcdDetectorTest, CostIsTheConfiguredHookCost) {
  SpcdConfig config;
  config.fault_hook_cost = 123;
  SpcdDetector detector(config, 2);
  EXPECT_EQ(detector.on_fault(fault(0x1000, 0, 1)), 123u);
}

TEST(SpcdDetectorTest, SamePageRepeatedBySameThreadIsNotCommunication) {
  SpcdDetector detector(SpcdConfig{}, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 0, 2));
  detector.on_fault(fault(0x1000, 0, 3));
  EXPECT_EQ(detector.matrix().total(), 0u);
  EXPECT_EQ(detector.faults_seen(), 3u);
}

TEST(SpcdDetectorTest, ThreeSharersAllPairsCounted) {
  SpcdDetector detector(SpcdConfig{}, 3);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 1, 2));  // (0,1)
  detector.on_fault(fault(0x1000, 2, 3));  // (2,0) and (2,1)
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
  EXPECT_EQ(detector.matrix().at(0, 2), 1u);
  EXPECT_EQ(detector.matrix().at(1, 2), 1u);
}

TEST(SpcdDetectorTest, GranularityFromConfigIsHonored) {
  SpcdConfig config;
  config.table.granularity_shift = 6;  // cache-line granularity
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1040, 1, 2));  // same page, different line
  EXPECT_EQ(detector.matrix().total(), 0u);
  detector.on_fault(fault(0x1010, 1, 3));  // same line as first fault
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
}

TEST(SpcdDetectorTest, TemporalWindowSuppresssesOldSharers) {
  SpcdConfig config;
  config.table.time_window = 50;
  SpcdDetector detector(config, 2);
  detector.on_fault(fault(0x1000, 0, 100));
  detector.on_fault(fault(0x1000, 1, 1000));  // too far apart
  EXPECT_EQ(detector.matrix().total(), 0u);
  detector.on_fault(fault(0x1000, 0, 1020));  // within window of thread 1
  EXPECT_EQ(detector.matrix().at(0, 1), 1u);
}

TEST(SpcdDetectorTest, OutOfRangeThreadIdIgnoredGracefully) {
  SpcdDetector detector(SpcdConfig{}, 2);
  detector.on_fault(fault(0x1000, 0, 1));
  detector.on_fault(fault(0x1000, 7, 2));  // tid beyond matrix
  EXPECT_EQ(detector.matrix().total(), 0u);
}

// A deterministic multi-thread fault stream with enough same-region overlap
// to produce communication and (for small tables) saturation pressure.
std::vector<mem::FaultEvent> synthetic_stream(std::size_t count) {
  std::vector<mem::FaultEvent> events;
  events.reserve(count);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t tid = static_cast<std::uint32_t>((state >> 33) % 8);
    const std::uint64_t page = (state >> 40) % 32;  // heavy sharing
    events.push_back(
        fault(0x10000 + page * 4096 + (state % 64) * 8, tid,
              static_cast<util::Cycles>(100 * (i + 1))));
  }
  return events;
}

// Expected state after a fault stream, read through the flushing accessors.
struct DetectorState {
  std::vector<std::uint64_t> triangle;
  std::uint64_t faults_seen;
  std::uint64_t comm_events;
  std::uint32_t saturation_resets;
  std::uint64_t table_accesses;
  std::uint64_t table_collisions;

  static DetectorState of(const SpcdDetector& d) {
    const auto tri = d.matrix().triangle();
    return DetectorState{{tri.begin(), tri.end()},
                         d.faults_seen(),
                         d.communication_events(),
                         d.saturation_resets(),
                         d.table().accesses(),
                         d.table().collisions()};
  }
  bool operator==(const DetectorState&) const = default;
};

TEST(SpcdDetectorTest, BatchedDeliveryIsBitIdenticalToUnbatched) {
  // Detector A drains only when its ring fills (plus one final flush);
  // detector B is forced to deliver every fault immediately by reading an
  // accessor after each event. State must match exactly — the ring may
  // change only *when* work happens, never its result.
  SpcdConfig config;
  config.saturation_check_faults = 64;  // exercise the saturation monitor
  config.table.num_entries = 64;        // tiny table: force collisions
  SpcdDetector batched(config, 8);
  SpcdDetector unbatched(config, 8);
  const auto events = synthetic_stream(1000);  // not a multiple of the ring
  for (const auto& e : events) {
    batched.on_fault(e);
    unbatched.on_fault(e);
    unbatched.flush();
  }
  EXPECT_EQ(DetectorState::of(batched), DetectorState::of(unbatched));
  EXPECT_GT(batched.communication_events(), 0u);
}

TEST(SpcdDetectorTest, BatchedDeliveryBitIdenticalUnderChaos) {
  // Same comparison with fault drops, duplicates, and forced collisions:
  // the chaos draws stay synchronous in on_fault, so identical seeds must
  // yield identical streams regardless of when the ring drains.
  chaos::PerturbationConfig chaos_config;
  chaos_config.drop_fault = 0.1;
  chaos_config.duplicate_fault = 0.1;
  chaos_config.forced_collision = 0.2;
  chaos::PerturbationEngine chaos_a(chaos_config, 42);
  chaos::PerturbationEngine chaos_b(chaos_config, 42);
  SpcdConfig config;
  config.saturation_check_faults = 64;
  config.table.num_entries = 64;
  SpcdDetector batched(config, 8, &chaos_a);
  SpcdDetector unbatched(config, 8, &chaos_b);
  std::uint64_t cost_batched = 0, cost_unbatched = 0;
  for (const auto& e : synthetic_stream(1000)) {
    cost_batched += batched.on_fault(e);
    cost_unbatched += unbatched.on_fault(e);
    unbatched.flush();
  }
  EXPECT_EQ(cost_batched, cost_unbatched);
  EXPECT_EQ(DetectorState::of(batched), DetectorState::of(unbatched));
  EXPECT_EQ(chaos_a.counters().faults_dropped,
            chaos_b.counters().faults_dropped);
  EXPECT_GT(chaos_a.counters().faults_dropped, 0u);
}

TEST(SpcdDetectorTest, RingOverflowDrainsWithoutLosingEvents) {
  // More events than the ring holds, with no accessor reads in between:
  // the ring must drain itself on overflow and lose nothing.
  SpcdDetector detector(SpcdConfig{}, 2);
  for (std::uint32_t i = 0; i < 500; ++i) {
    detector.on_fault(fault(0x1000, i % 2, 10 * (i + 1)));
  }
  EXPECT_EQ(detector.faults_seen(), 500u);
  EXPECT_GT(detector.matrix().at(0, 1), 0u);
}

}  // namespace
}  // namespace spcd::core
