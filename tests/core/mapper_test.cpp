#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace spcd::core {
namespace {

arch::Topology xeon() {
  return arch::Topology(arch::TopologySpec{.sockets = 2,
                                           .cores_per_socket = 8,
                                           .smt_per_core = 2});
}

/// Band matrix: each thread communicates with t-1 and t+1 (no wrap),
/// strength decreasing slightly with id so ties are broken consistently.
CommMatrix band_matrix(std::uint32_t n) {
  CommMatrix m(n);
  for (std::uint32_t t = 0; t + 1 < n; ++t) {
    m.add(t, t + 1, 1000 - t);
  }
  return m;
}

void expect_valid_placement(const sim::Placement& p, std::uint32_t contexts) {
  std::set<arch::ContextId> used;
  for (const auto ctx : p) {
    EXPECT_LT(ctx, contexts);
    EXPECT_TRUE(used.insert(ctx).second) << "duplicate context " << ctx;
  }
}

TEST(MapperTest, PlacementIsInjective) {
  const auto topo = xeon();
  const auto result = compute_mapping(band_matrix(32), topo);
  expect_valid_placement(result.placement, topo.num_contexts());
  EXPECT_EQ(result.rounds, 5u);  // 32 -> 16 -> 8 -> 4 -> 2 -> 1
}

TEST(MapperTest, StrongPairsLandOnSmtSiblings) {
  const auto topo = xeon();
  // Clear pairing: (0,1), (2,3), ... with huge weights; everything else 0.
  CommMatrix m(32);
  for (std::uint32_t p = 0; p < 16; ++p) m.add(2 * p, 2 * p + 1, 100000);
  // Light chain between consecutive pairs to order the upper levels.
  for (std::uint32_t p = 0; p + 1 < 16; ++p) m.add(2 * p + 1, 2 * p + 2, 10);
  const auto result = compute_mapping(m, topo);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(topo.core_of(result.placement[2 * p]),
              topo.core_of(result.placement[2 * p + 1]))
        << "pair " << p << " split across cores";
  }
}

TEST(MapperTest, BandMatrixStaysMostlyWithinSockets) {
  const auto topo = xeon();
  const auto result = compute_mapping(band_matrix(32), topo);
  // For a chain, the ideal split cuts exactly one link; allow a little
  // slack but far below the ~16 cross links of a communication-oblivious
  // spread.
  std::uint32_t cross = 0;
  for (std::uint32_t t = 0; t + 1 < 32; ++t) {
    if (topo.socket_of(result.placement[t]) !=
        topo.socket_of(result.placement[t + 1])) {
      ++cross;
    }
  }
  EXPECT_LE(cross, 3u);
}

TEST(MapperTest, CostOfMappedBandBeatsSpread) {
  const auto topo = xeon();
  const auto m = band_matrix(32);
  const auto mapped = compute_mapping(m, topo).placement;
  const auto spread = os_spread_placement(topo, 32);
  EXPECT_LT(placement_comm_cost(m, topo, mapped),
            0.5 * placement_comm_cost(m, topo, spread));
}

TEST(MapperTest, GreedyIsValidAndWeaklyWorseOrEqual) {
  const auto topo = xeon();
  util::Xoshiro256 rng(5);
  CommMatrix m(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    for (std::uint32_t j = i + 1; j < 32; ++j) {
      const auto w = rng.below(100);
      if (w > 0) m.add(i, j, w);
    }
  }
  const auto exact = compute_mapping(m, topo).placement;
  const auto greedy = compute_mapping_greedy(m, topo).placement;
  expect_valid_placement(greedy, topo.num_contexts());
  // The matching-based mapper should not be worse than greedy by more
  // than a smidge (it optimizes each level exactly).
  EXPECT_LE(placement_comm_cost(m, topo, exact),
            placement_comm_cost(m, topo, greedy) * 1.05);
}

TEST(MapperTest, AlignmentKeepsEquivalentMappingInPlace) {
  const auto topo = xeon();
  const auto m = band_matrix(32);
  const auto first = compute_mapping(m, topo).placement;
  // Remapping with the same matrix and the current placement must not move
  // anything: the grouping is identical and alignment keeps assignments.
  const auto second = compute_mapping(m, topo, first).placement;
  EXPECT_EQ(first, second);
}

TEST(MapperTest, AlignmentPreservesQuality) {
  const auto topo = xeon();
  util::Xoshiro256 rng(17);
  CommMatrix m(32);
  for (std::uint32_t t = 0; t + 1 < 32; ++t) m.add(t, t + 1, 500 + rng.below(100));
  const auto current = random_placement(topo, 32, 99);
  const auto unaligned = compute_mapping(m, topo).placement;
  const auto aligned = compute_mapping(m, topo, current).placement;
  expect_valid_placement(aligned, topo.num_contexts());
  EXPECT_NEAR(placement_comm_cost(m, topo, aligned),
              placement_comm_cost(m, topo, unaligned),
              placement_comm_cost(m, topo, unaligned) * 1e-9);
}

TEST(MapperTest, AlignmentMinimizesMovesFromNearOptimal) {
  const auto topo = xeon();
  const auto m = band_matrix(32);
  const auto optimal = compute_mapping(m, topo).placement;
  // Perturb: swap two threads within the same core (SMT slots).
  auto current = optimal;
  std::swap(current[0], current[1]);
  const auto re = compute_mapping(m, topo, current).placement;
  std::uint32_t moves = 0;
  for (std::uint32_t t = 0; t < 32; ++t) {
    if (re[t] != current[t]) ++moves;
  }
  // At most the two perturbed threads move back (or zero if the order
  // within a core is symmetric, which it is for SMT slots).
  EXPECT_LE(moves, 2u);
}

TEST(MapperTest, EmptyMatrixStillProducesValidPlacement) {
  const auto topo = xeon();
  const auto result = compute_mapping(CommMatrix(32), topo);
  expect_valid_placement(result.placement, topo.num_contexts());
}

TEST(MapperTest, FewerThreadsThanContexts) {
  const auto topo = xeon();
  const auto result = compute_mapping(band_matrix(8), topo);
  EXPECT_EQ(result.placement.size(), 8u);
  expect_valid_placement(result.placement, topo.num_contexts());
}

TEST(MapperTest, OddThreadCount) {
  const auto topo = xeon();
  const auto result = compute_mapping(band_matrix(7), topo);
  EXPECT_EQ(result.placement.size(), 7u);
  expect_valid_placement(result.placement, topo.num_contexts());
}

TEST(MapperTest, SingleSocketMachine) {
  arch::Topology topo(arch::TopologySpec{.sockets = 1,
                                         .cores_per_socket = 4,
                                         .smt_per_core = 1});
  const auto result = compute_mapping(band_matrix(4), topo);
  expect_valid_placement(result.placement, topo.num_contexts());
}

TEST(MapperTest, PlacementCommCostWeightsDistance) {
  const auto topo = xeon();
  CommMatrix m(2);
  m.add(0, 1, 100);
  const double same_core = placement_comm_cost(m, topo, {0, 1});
  const double same_socket = placement_comm_cost(m, topo, {0, 2});
  const double cross = placement_comm_cost(m, topo, {0, 16});
  EXPECT_LT(same_core, same_socket);
  EXPECT_LT(same_socket, cross);
}

}  // namespace
}  // namespace spcd::core
