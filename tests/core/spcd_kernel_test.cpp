#include "core/spcd_kernel.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "sim/machine.hpp"
#include "workloads/prodcons.hpp"

namespace spcd::core {
namespace {

workloads::ProdConsParams small_prodcons() {
  workloads::ProdConsParams p;
  p.pairs = 4;  // 8 threads on the tiny machine
  p.iterations_per_phase = 40;
  p.phases = 1;
  p.refs_per_iter = 800;
  p.buffer_bytes = 32 * 1024;
  p.compute_cycles = 100;
  return p;
}

SpcdConfig test_config() {
  SpcdConfig c;
  c.injector_period = 50'000;
  c.mapping_interval = 100'000;
  c.min_matrix_total = 16;
  c.table.num_entries = 4096;
  return c;
}

TEST(SpcdKernelTest, DetectsPairCommunicationAndMigrates) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), /*seed=*/7);
  // Spread pairs across sockets so the mapping has something to fix.
  sim::Engine engine(machine, as, wl,
                     os_spread_placement(machine.topology(), 8));
  SpcdKernel kernel(test_config(), 8, /*seed=*/3);
  kernel.install(engine);
  engine.run();

  // Phase-0 pairs are (0,1), (2,3), ...: the detected partners must match.
  const CommMatrix& m = kernel.matrix();
  EXPECT_GT(m.total(), 0u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_GT(m.at(2 * p, 2 * p + 1), 0u) << "pair " << p << " undetected";
  }
  EXPECT_GE(kernel.migration_events(), 1u);

  // After migration, communicating pairs share at least a socket.
  const auto& topo = machine.topology();
  std::uint32_t together = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    if (topo.socket_of(engine.placement()[2 * p]) ==
        topo.socket_of(engine.placement()[2 * p + 1])) {
      ++together;
    }
  }
  EXPECT_GE(together, 3u);
}

TEST(SpcdKernelTest, DisabledMigrationStillDetects) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), 7);
  const auto initial = os_spread_placement(machine.topology(), 8);
  sim::Engine engine(machine, as, wl, initial);
  SpcdConfig config = test_config();
  config.enable_migration = false;
  SpcdKernel kernel(config, 8, 3);
  kernel.install(engine);
  engine.run();
  EXPECT_GT(kernel.matrix().total(), 0u);
  EXPECT_EQ(kernel.migration_events(), 0u);
  EXPECT_EQ(engine.placement(), initial);
}

TEST(SpcdKernelTest, OverheadIsCharged) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), 7);
  sim::Engine engine(machine, as, wl,
                     os_spread_placement(machine.topology(), 8));
  SpcdKernel kernel(test_config(), 8, 3);
  kernel.install(engine);
  engine.run();
  EXPECT_GT(engine.counters().spcd_detection_cycles, 0u);
  EXPECT_GT(engine.counters().mapping_cycles, 0u);
  EXPECT_GT(engine.counters().injected_faults, 0u);
}

TEST(SpcdKernelTest, DestructorUnhooksObserver) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), 7);
  sim::Engine engine(machine, as, wl,
                     os_spread_placement(machine.topology(), 8));
  {
    SpcdKernel kernel(test_config(), 8, 3);
    kernel.install(engine);
  }
  // Kernel destroyed: faults must not crash (observer removed). Events may
  // still fire but reference the destroyed kernel... so do not run the
  // engine here; just take a fault directly.
  (void)as.translate(0x1000, 0, 0, 0, 0);
  SUCCEED();
}

TEST(SpcdKernelTest, GainGateBlocksUniformPatterns) {
  // A workload with uniform all-to-all sharing offers no mappable structure;
  // the kernel must not migrate.
  class Uniform final : public sim::Workload {
   public:
    std::string name() const override { return "uniform"; }
    std::uint32_t num_threads() const override { return 8; }
    std::unique_ptr<sim::ThreadProgram> make_thread(
        std::uint32_t tid, std::uint64_t seed) override {
      class P final : public sim::ThreadProgram {
       public:
        P(std::uint64_t seed) : rng_(seed) {}
        sim::Op next() override {
          if (count_++ >= 40000) return sim::Op::finish();
          // One shared region hammered by everyone equally.
          return sim::Op::access(0x40000 + rng_.below(64) * 4096,
                                 rng_.chance(0.3), 1, 120);
        }

       private:
        util::Xoshiro256 rng_;
        std::uint32_t count_ = 0;
      };
      return std::make_unique<P>(seed * 977 + tid);
    }
  };
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  Uniform wl;
  sim::Engine engine(machine, as, wl,
                     os_spread_placement(machine.topology(), 8));
  SpcdKernel kernel(test_config(), 8, 3);
  kernel.install(engine);
  engine.run();
  EXPECT_GT(kernel.matrix().total(), 0u);  // communication was detected
  EXPECT_LE(kernel.migration_events(), 1u);  // but (almost) never acted on
}

}  // namespace
}  // namespace spcd::core
