#include "core/matching.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace spcd::core {
namespace {

// Exhaustive optimum by recursion over vertices (n <= 10).
struct BruteForce {
  int n;
  std::vector<std::vector<std::int64_t>> w;  // adjacency; -1 = no edge
  std::vector<int> best_mate;

  std::int64_t solve(bool max_cardinality) {
    std::vector<int> mate(static_cast<std::size_t>(n), -1);
    best_mate = mate;
    best_weight_ = 0;
    best_card_ = 0;
    max_card_ = max_cardinality;
    recurse(0, mate, 0, 0);
    return best_weight_;
  }

 private:
  void recurse(int v, std::vector<int>& mate, std::int64_t weight, int card) {
    if (v == n) {
      const bool better =
          max_card_ ? (card > best_card_ ||
                       (card == best_card_ && weight > best_weight_))
                    : weight > best_weight_;
      if (better) {
        best_weight_ = weight;
        best_card_ = card;
        best_mate = mate;
      }
      return;
    }
    if (mate[static_cast<std::size_t>(v)] != -1) {
      recurse(v + 1, mate, weight, card);
      return;
    }
    recurse(v + 1, mate, weight, card);  // leave v unmatched
    for (int u = v + 1; u < n; ++u) {
      if (mate[static_cast<std::size_t>(u)] != -1) continue;
      if (w[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] ==
          kNoEdge) {
        continue;
      }
      mate[static_cast<std::size_t>(v)] = u;
      mate[static_cast<std::size_t>(u)] = v;
      recurse(v + 1, mate,
              weight +
                  w[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)],
              card + 1);
      mate[static_cast<std::size_t>(v)] = -1;
      mate[static_cast<std::size_t>(u)] = -1;
    }
  }

  static constexpr std::int64_t kNoEdge = INT64_MIN;
  std::int64_t best_weight_ = 0;
  int best_card_ = 0;
  bool max_card_ = false;

 public:
  static constexpr std::int64_t no_edge() { return kNoEdge; }
};

std::int64_t weight_of(const std::vector<int>& mate,
                       const std::vector<WeightedEdge>& edges) {
  return matching_weight(mate, edges);
}

int cardinality_of(const std::vector<int>& mate) {
  int c = 0;
  for (std::size_t v = 0; v < mate.size(); ++v) {
    if (mate[v] != -1 && mate[v] > static_cast<int>(v)) ++c;
  }
  return c;
}

void expect_valid(const std::vector<int>& mate) {
  for (std::size_t v = 0; v < mate.size(); ++v) {
    if (mate[v] != -1) {
      ASSERT_GE(mate[v], 0);
      ASSERT_LT(mate[v], static_cast<int>(mate.size()));
      EXPECT_EQ(mate[static_cast<std::size_t>(mate[v])],
                static_cast<int>(v));
      EXPECT_NE(mate[v], static_cast<int>(v));
    }
  }
}

TEST(MatchingTest, EmptyGraph) {
  const auto mate = max_weight_matching(0, {});
  EXPECT_TRUE(mate.empty());
  const auto mate2 = max_weight_matching(3, {});
  EXPECT_EQ(mate2, (std::vector<int>{-1, -1, -1}));
}

TEST(MatchingTest, SingleEdge) {
  const auto mate = max_weight_matching(2, {{0, 1, 5}});
  EXPECT_EQ(mate, (std::vector<int>{1, 0}));
}

TEST(MatchingTest, NegativeEdgeSkippedUnlessMaxCardinality) {
  const std::vector<WeightedEdge> edges{{0, 1, -3}};
  const auto lazy = max_weight_matching(2, edges, false);
  EXPECT_EQ(lazy, (std::vector<int>{-1, -1}));
  const auto forced = max_weight_matching(2, edges, true);
  EXPECT_EQ(forced, (std::vector<int>{1, 0}));
}

TEST(MatchingTest, PathChoosesHeavierEdge) {
  // 0-1 (2), 1-2 (3): only one can be picked.
  const auto mate = max_weight_matching(3, {{0, 1, 2}, {1, 2, 3}});
  EXPECT_EQ(mate[1], 2);
  EXPECT_EQ(mate[2], 1);
  EXPECT_EQ(mate[0], -1);
}

TEST(MatchingTest, PathPrefersTwoEdgesOverOneHeavy) {
  // 0-1 (2), 1-2 (3), 2-3 (2): 2+2 beats 3.
  const auto mate = max_weight_matching(4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 2}});
  EXPECT_EQ(mate, (std::vector<int>{1, 0, 3, 2}));
}

// The classic tricky cases from van Rantwijk's test suite.
TEST(MatchingTest, CreateBlossomAndAugment) {
  // Triangle 1-2-3 plus pendant: forces an S-blossom.
  const auto mate = max_weight_matching(
      5, {{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 4, 3}));
}

TEST(MatchingTest, ExpandBlossomCase) {
  const auto mate = max_weight_matching(
      7,
      {{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 5, 4, 1}));
}

TEST(MatchingTest, SBlossomRelabelAsT) {
  const auto mate = max_weight_matching(
      9, {{1, 2, 10},
          {1, 7, 10},
          {2, 3, 12},
          {3, 4, 20},
          {3, 5, 20},
          {4, 5, 25},
          {5, 6, 10},
          {6, 7, 10},
          {7, 8, 8}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 4, 3, 6, 5, 8, 7}));
}

TEST(MatchingTest, NestedSBlossom) {
  const auto mate = max_weight_matching(
      7, {{1, 2, 9},
          {1, 3, 9},
          {2, 3, 10},
          {2, 4, 8},
          {3, 5, 8},
          {4, 5, 10},
          {5, 6, 6}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 3, 4, 1, 2, 6, 5}));
}

TEST(MatchingTest, NestedSBlossomRelabeledExpanded) {
  const auto mate = max_weight_matching(
      12, {{1, 2, 40},
           {1, 3, 40},
           {2, 3, 60},
           {2, 4, 55},
           {3, 5, 55},
           {4, 5, 50},
           {1, 8, 15},
           {5, 7, 30},
           {7, 6, 10},
           {8, 10, 10},
           {4, 9, 30}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 2, 1, 5, 9, 3, 7, 6, 10, 4, 8, -1}));
}

TEST(MatchingTest, BlossomWithAugmentingPathThroughIt) {
  const auto mate = max_weight_matching(
      10, {{1, 2, 45},
          {1, 5, 45},
          {2, 3, 50},
          {3, 4, 45},
          {4, 5, 50},
          {1, 6, 30},
          {3, 9, 35},
          {4, 8, 35},
          {5, 7, 26},
          {9, 8, 5}});
  EXPECT_EQ(mate, (std::vector<int>{-1, 6, 3, 2, 8, 7, 1, 5, 4, -1}));
}

class MatchingRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingRandomTest, MatchesBruteForceOnRandomGraphs) {
  util::Xoshiro256 rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const int n = 2 + static_cast<int>(rng.below(7));  // 2..8 vertices
    const double density = 0.3 + rng.uniform() * 0.7;
    std::vector<WeightedEdge> edges;
    BruteForce bf;
    bf.n = n;
    bf.w.assign(static_cast<std::size_t>(n),
                std::vector<std::int64_t>(static_cast<std::size_t>(n),
                                          BruteForce::no_edge()));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.uniform() > density) continue;
        const auto weight = static_cast<std::int64_t>(rng.below(100));
        edges.push_back({i, j, weight});
        bf.w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            weight;
        bf.w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            weight;
      }
    }
    for (const bool maxcard : {false, true}) {
      const auto mate = max_weight_matching(n, edges, maxcard);
      expect_valid(mate);
      const std::int64_t got = weight_of(mate, edges);
      const std::int64_t want = bf.solve(maxcard);
      if (maxcard) {
        EXPECT_EQ(cardinality_of(mate), cardinality_of(bf.best_mate))
            << "seed=" << GetParam() << " round=" << round << " n=" << n;
      }
      EXPECT_EQ(got, want) << "seed=" << GetParam() << " round=" << round
                           << " n=" << n << " maxcard=" << maxcard;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(MatchingTest, CompleteGraphEvenVerticesIsPerfectUnderMaxCardinality) {
  util::Xoshiro256 rng(77);
  for (const int n : {2, 4, 8, 16, 32}) {
    std::vector<WeightedEdge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        edges.push_back({i, j, static_cast<std::int64_t>(rng.below(1000))});
      }
    }
    const auto mate = max_weight_matching(n, edges, true);
    expect_valid(mate);
    for (int v = 0; v < n; ++v) {
      EXPECT_NE(mate[static_cast<std::size_t>(v)], -1)
          << "n=" << n << " v=" << v;
    }
  }
}

TEST(MatchingTest, DenseWrapperMatchesEdgeList) {
  util::Xoshiro256 rng(5);
  const int n = 6;
  std::vector<std::int64_t> w(static_cast<std::size_t>(n * n), 0);
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto weight = static_cast<std::int64_t>(rng.below(50));
      w[static_cast<std::size_t>(i * n + j)] = weight;
      w[static_cast<std::size_t>(j * n + i)] = weight;
      edges.push_back({i, j, weight});
    }
  }
  const auto a = max_weight_matching_dense(w, n, true);
  const auto b = max_weight_matching(n, edges, true);
  EXPECT_EQ(weight_of(a, edges), weight_of(b, edges));
}

TEST(MatchingTest, ZeroWeightsStillPerfectWithMaxCardinality) {
  std::vector<WeightedEdge> edges;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.push_back({i, j, 0});
  }
  const auto mate = max_weight_matching(n, edges, true);
  expect_valid(mate);
  EXPECT_EQ(cardinality_of(mate), n / 2);
}

TEST(MatchingTest, LargeCompleteGraphRuns) {
  // 64 vertices: sanity (termination + validity) at mapper-relevant scale.
  util::Xoshiro256 rng(123);
  const int n = 64;
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back({i, j, static_cast<std::int64_t>(rng.below(10000))});
    }
  }
  const auto mate = max_weight_matching(n, edges, true);
  expect_valid(mate);
  EXPECT_EQ(cardinality_of(mate), n / 2);
}

}  // namespace
}  // namespace spcd::core
