#include "core/comm_filter.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

TEST(CommFilterTest, EmptyMatrixNeverTriggers) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_EQ(f.last_changes(), 0u);
  EXPECT_EQ(f.evaluations(), 1u);
}

TEST(CommFilterTest, FirstPatternTriggersWhenEnoughThreadsGainPartners) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_TRUE(f.should_remap(m));
  EXPECT_EQ(f.triggers(), 1u);
}

TEST(CommFilterTest, SinglePartnerChangeBelowThresholdDoesNotTrigger) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);  // only threads 0 and 1 have partners
  EXPECT_TRUE(f.should_remap(m));  // 2 threads gained partners
  // Thread 2 now gains a partner (thread 3 also changes -> that's 2) — use
  // a one-sided change instead: strengthen 0's tie to 2.
  m.add(0, 2, 100);  // 0's partner flips to 2; 2's partner becomes 0
  // 0 changes (dominates 10 by margin), 2 changes from -1. That's 2 again.
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, StablePatternStopsTriggering) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_TRUE(f.should_remap(m));
  m.add(0, 1, 5);
  m.add(2, 3, 5);
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_EQ(f.triggers(), 1u);
}

TEST(CommFilterTest, MarginDampsNearTies) {
  CommFilter f(4, 2, /*margin=*/1.5);
  CommMatrix m(4);
  m.add(0, 1, 100);
  m.add(2, 3, 100);
  EXPECT_TRUE(f.should_remap(m));
  // New partner only slightly stronger: below the 1.5x margin, no change.
  m.add(0, 2, 110);
  m.add(1, 3, 110);
  EXPECT_FALSE(f.should_remap(m));
  // Now clearly dominating: both 0 and 1 switch -> trigger.
  m.add(0, 2, 100);
  m.add(1, 3, 100);
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, ChangesAccumulateAcrossEvaluations) {
  // Threads that changed partner are counted until the mapping runs: one
  // change per evaluation must eventually cross the threshold.
  CommFilter f(6, 3);  // threshold 3 so a pair flip alone cannot trigger
  CommMatrix m(6);
  m.add(0, 1, 10);
  EXPECT_FALSE(f.should_remap(m));  // 2 accumulated changes (threads 0, 1)
  m.add(4, 5, 10);
  // 2 more changes accumulate -> 4 >= 3: triggers now.
  EXPECT_TRUE(f.should_remap(m));
  // Accumulator was reset by the trigger.
  EXPECT_FALSE(f.should_remap(m));
}

TEST(CommFilterTest, ThresholdOneTriggersOnAnyChange) {
  CommFilter f(4, 1);
  CommMatrix m(4);
  m.add(2, 3, 1);
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, HighThresholdNeverTriggersOnPairFlip) {
  CommFilter f(32, 16);
  CommMatrix m(32);
  m.add(0, 1, 100);
  m.add(2, 3, 100);
  EXPECT_FALSE(f.should_remap(m));  // 4 changes < 16
}

TEST(CommFilterTest, EvaluateLeavesTriggerPendingUntilCommit) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_TRUE(f.evaluate(m));
  // Deferred (no commit): the accumulator stays armed and re-fires.
  EXPECT_TRUE(f.evaluate(m));
  EXPECT_EQ(f.triggers(), 0u);
  f.commit_trigger();
  EXPECT_EQ(f.triggers(), 1u);
  EXPECT_FALSE(f.evaluate(m));  // nothing changed since the commit
}

TEST(CommFilterTest, HysteresisCommitsOnlyPersistentSwitches) {
  CommFilter f(2, 1, 1.5, /*hysteresis_windows=*/3);
  CommMatrix m(2);
  m.add(0, 1, 10);
  EXPECT_FALSE(f.evaluate(m));  // streak 1 of 3: held back
  EXPECT_EQ(f.pending_changes(), 2u);
  EXPECT_FALSE(f.evaluate(m));  // streak 2 of 3
  EXPECT_TRUE(f.evaluate(m));   // persisted: both threads commit
  EXPECT_EQ(f.pending_changes(), 0u);
}

TEST(CommFilterTest, HysteresisStarvesOscillatingArgmax) {
  // The phase_flip attack shape: thread 0's argmax leapfrogs between 1 and
  // 2 every evaluation. The persistence requirement resets the streak on
  // each flip, so thread 0 never commits a switch; with threshold 3 the
  // two stable victims alone can never trigger.
  CommFilter f(3, 3, 1.5, /*hysteresis_windows=*/2);
  CommMatrix m(3);
  std::uint64_t w1 = 0;
  std::uint64_t w2 = 0;
  for (int round = 0; round < 10; ++round) {
    if (round % 2 == 0) {
      const std::uint64_t add = (3 * w2) / 2 + 10 - w1;
      m.add(0, 1, add);
      w1 += add;
    } else {
      const std::uint64_t add = (3 * w1) / 2 + 10 - w2;
      m.add(0, 2, add);
      w2 += add;
    }
    EXPECT_FALSE(f.evaluate(m)) << "round " << round;
  }
  EXPECT_EQ(f.triggers(), 0u);
}

TEST(CommFilterTest, HysteresisOneMatchesImmediateCommit) {
  CommFilter immediate(4, 2);
  CommFilter one(4, 2, 1.5, /*hysteresis_windows=*/1);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_EQ(immediate.should_remap(m), one.should_remap(m));
  m.add(0, 2, 100);
  m.add(1, 3, 100);
  EXPECT_EQ(immediate.should_remap(m), one.should_remap(m));
}

TEST(CommFilterDeathTest, SizeMismatchAborts) {
  CommFilter f(4, 2);
  CommMatrix m(5);
  EXPECT_DEATH((void)f.should_remap(m), "Precondition");
}

TEST(CommFilterDeathTest, BadMarginAborts) {
  EXPECT_DEATH(CommFilter(4, 2, 0.5), "Precondition");
}

}  // namespace
}  // namespace spcd::core
