#include "core/comm_filter.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

TEST(CommFilterTest, EmptyMatrixNeverTriggers) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_EQ(f.last_changes(), 0u);
  EXPECT_EQ(f.evaluations(), 1u);
}

TEST(CommFilterTest, FirstPatternTriggersWhenEnoughThreadsGainPartners) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_TRUE(f.should_remap(m));
  EXPECT_EQ(f.triggers(), 1u);
}

TEST(CommFilterTest, SinglePartnerChangeBelowThresholdDoesNotTrigger) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);  // only threads 0 and 1 have partners
  EXPECT_TRUE(f.should_remap(m));  // 2 threads gained partners
  // Thread 2 now gains a partner (thread 3 also changes -> that's 2) — use
  // a one-sided change instead: strengthen 0's tie to 2.
  m.add(0, 2, 100);  // 0's partner flips to 2; 2's partner becomes 0
  // 0 changes (dominates 10 by margin), 2 changes from -1. That's 2 again.
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, StablePatternStopsTriggering) {
  CommFilter f(4, 2);
  CommMatrix m(4);
  m.add(0, 1, 10);
  m.add(2, 3, 10);
  EXPECT_TRUE(f.should_remap(m));
  m.add(0, 1, 5);
  m.add(2, 3, 5);
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_FALSE(f.should_remap(m));
  EXPECT_EQ(f.triggers(), 1u);
}

TEST(CommFilterTest, MarginDampsNearTies) {
  CommFilter f(4, 2, /*margin=*/1.5);
  CommMatrix m(4);
  m.add(0, 1, 100);
  m.add(2, 3, 100);
  EXPECT_TRUE(f.should_remap(m));
  // New partner only slightly stronger: below the 1.5x margin, no change.
  m.add(0, 2, 110);
  m.add(1, 3, 110);
  EXPECT_FALSE(f.should_remap(m));
  // Now clearly dominating: both 0 and 1 switch -> trigger.
  m.add(0, 2, 100);
  m.add(1, 3, 100);
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, ChangesAccumulateAcrossEvaluations) {
  // Threads that changed partner are counted until the mapping runs: one
  // change per evaluation must eventually cross the threshold.
  CommFilter f(6, 3);  // threshold 3 so a pair flip alone cannot trigger
  CommMatrix m(6);
  m.add(0, 1, 10);
  EXPECT_FALSE(f.should_remap(m));  // 2 accumulated changes (threads 0, 1)
  m.add(4, 5, 10);
  // 2 more changes accumulate -> 4 >= 3: triggers now.
  EXPECT_TRUE(f.should_remap(m));
  // Accumulator was reset by the trigger.
  EXPECT_FALSE(f.should_remap(m));
}

TEST(CommFilterTest, ThresholdOneTriggersOnAnyChange) {
  CommFilter f(4, 1);
  CommMatrix m(4);
  m.add(2, 3, 1);
  EXPECT_TRUE(f.should_remap(m));
}

TEST(CommFilterTest, HighThresholdNeverTriggersOnPairFlip) {
  CommFilter f(32, 16);
  CommMatrix m(32);
  m.add(0, 1, 100);
  m.add(2, 3, 100);
  EXPECT_FALSE(f.should_remap(m));  // 4 changes < 16
}

TEST(CommFilterDeathTest, SizeMismatchAborts) {
  CommFilter f(4, 2);
  CommMatrix m(5);
  EXPECT_DEATH((void)f.should_remap(m), "Precondition");
}

TEST(CommFilterDeathTest, BadMarginAborts) {
  EXPECT_DEATH(CommFilter(4, 2, 0.5), "Precondition");
}

}  // namespace
}  // namespace spcd::core
