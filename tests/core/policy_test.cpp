#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spcd::core {
namespace {

arch::Topology xeon() {
  return arch::Topology(arch::TopologySpec{.sockets = 2,
                                           .cores_per_socket = 8,
                                           .smt_per_core = 2});
}

void expect_injective(const sim::Placement& p) {
  std::set<arch::ContextId> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), p.size());
}

TEST(PolicyTest, ToStringNames) {
  EXPECT_STREQ(to_string(MappingPolicy::kOs), "os");
  EXPECT_STREQ(to_string(MappingPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(MappingPolicy::kOracle), "oracle");
  EXPECT_STREQ(to_string(MappingPolicy::kSpcd), "spcd");
}

TEST(PolicyTest, ParsePolicyRoundTrips) {
  for (const auto policy : {MappingPolicy::kOs, MappingPolicy::kRandom,
                            MappingPolicy::kOracle, MappingPolicy::kSpcd}) {
    const auto parsed = parse_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value()) << to_string(policy);
    EXPECT_EQ(*parsed, policy);
  }
}

TEST(PolicyTest, ParsePolicyRejectsUnknownNames) {
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("OS").has_value());       // case-sensitive
  EXPECT_FALSE(parse_policy("spc").has_value());      // no prefix match
  EXPECT_FALSE(parse_policy("spcd ").has_value());    // no trimming
  EXPECT_FALSE(parse_policy("linux").has_value());
}

TEST(PolicyTest, PolicyNamesMatchToStringInEnumOrder) {
  const auto names = policy_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], to_string(static_cast<MappingPolicy>(i)));
  }
}

TEST(PolicyTest, OsSpreadSplitsNeighborsAcrossSockets) {
  const auto topo = xeon();
  const auto p = os_spread_placement(topo, 32);
  expect_injective(p);
  // Consecutive thread ids land on different sockets (breadth-first fill).
  EXPECT_NE(topo.socket_of(p[0]), topo.socket_of(p[1]));
  EXPECT_NE(topo.socket_of(p[2]), topo.socket_of(p[3]));
}

TEST(PolicyTest, OsSpreadFillsCoresBeforeSmt) {
  const auto topo = xeon();
  const auto p = os_spread_placement(topo, 16);
  // 16 threads on 16 cores: every core has at most one thread.
  std::set<arch::CoreId> cores;
  for (const auto ctx : p) {
    EXPECT_TRUE(cores.insert(topo.core_of(ctx)).second);
    EXPECT_EQ(topo.smt_slot_of(ctx), 0u);
  }
}

TEST(PolicyTest, OsSpreadPartialCounts) {
  const auto topo = xeon();
  for (const std::uint32_t n : {1u, 2u, 7u, 31u, 32u}) {
    const auto p = os_spread_placement(topo, n);
    EXPECT_EQ(p.size(), n);
    expect_injective(p);
  }
}

TEST(PolicyTest, RandomPlacementIsSeededAndValid) {
  const auto topo = xeon();
  const auto a = random_placement(topo, 32, 1);
  const auto b = random_placement(topo, 32, 1);
  const auto c = random_placement(topo, 32, 2);
  expect_injective(a);
  EXPECT_EQ(a, b);  // same seed, same mapping
  EXPECT_NE(a, c);  // different seed, different mapping
}

TEST(PolicyTest, RandomPlacementPartial) {
  const auto topo = xeon();
  const auto p = random_placement(topo, 10, 3);
  EXPECT_EQ(p.size(), 10u);
  expect_injective(p);
}

TEST(PolicyTest, CompactPlacementIsIdentity) {
  const auto topo = xeon();
  const auto p = compact_placement(topo, 6);
  EXPECT_EQ(p, (sim::Placement{0, 1, 2, 3, 4, 5}));
}

TEST(PolicyDeathTest, TooManyThreadsAborts) {
  const auto topo = xeon();
  EXPECT_DEATH((void)os_spread_placement(topo, 33), "Precondition");
  EXPECT_DEATH((void)random_placement(topo, 33, 1), "Precondition");
}

}  // namespace
}  // namespace spcd::core
