#include "core/parallel_oracle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/oracle.hpp"
#include "util/rng.hpp"

namespace spcd::core {
namespace {

struct SyntheticAccess {
  std::uint32_t tid;
  std::uint64_t vaddr;
  bool write;
  util::Cycles now;
};

// A stream with heavy region sharing (producer/consumer pairs plus random
// noise) so the matrix has nontrivial structure to preserve.
std::vector<SyntheticAccess> make_stream(std::uint32_t threads,
                                         std::size_t ops) {
  std::vector<SyntheticAccess> stream;
  stream.reserve(ops);
  util::Xoshiro256 rng(21);
  util::Cycles now = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto tid = static_cast<std::uint32_t>(rng.below(threads));
    // Partner threads share a small region pool; everyone shares page 0.
    const std::uint64_t region =
        rng.chance(0.2) ? rng.below(8)
                        : (tid / 2) * 100 + rng.below(50);
    stream.push_back(SyntheticAccess{tid, region * 64 + rng.below(64),
                                     rng.chance(0.3), now += 7});
  }
  return stream;
}

TEST(ParallelOracleTracerTest, MatrixIsIdenticalToSerialAtAnyWidth) {
  constexpr std::uint32_t kThreads = 8;
  const auto stream = make_stream(kThreads, 60'000);

  OracleTracer reference(kThreads, /*granularity_shift=*/6,
                         /*time_window=*/1'000);
  for (const auto& a : stream) {
    reference.observe(a.tid, a.vaddr, a.write, a.now);
  }

  for (const unsigned workers : {1u, 2u, 8u}) {
    ParallelOracleTracer tracer(kThreads, workers, /*granularity_shift=*/6,
                                /*time_window=*/1'000);
    for (const auto& a : stream) {
      tracer.observe(a.tid, a.vaddr, a.write, a.now);
    }
    tracer.finish();
    EXPECT_EQ(tracer.accesses_seen(), reference.accesses_seen())
        << "workers=" << workers;
    ASSERT_EQ(tracer.matrix().size(), reference.matrix().size());
    for (std::uint32_t a = 0; a < kThreads; ++a) {
      for (std::uint32_t b = 0; b < kThreads; ++b) {
        EXPECT_EQ(tracer.matrix().at(a, b), reference.matrix().at(a, b))
            << "workers=" << workers << " cell (" << a << "," << b << ")";
      }
    }
  }
}

TEST(ParallelOracleTracerTest, FinishIsIdempotentAndImpliedByAccessors) {
  ParallelOracleTracer tracer(4, 2);
  tracer.observe(0, 0x1000, false, 10);
  tracer.observe(1, 0x1000, false, 20);
  // matrix() implies finish(); calling finish() again must be harmless.
  EXPECT_GT(tracer.matrix().total(), 0u);
  tracer.finish();
  EXPECT_EQ(tracer.accesses_seen(), 2u);
}

TEST(ParallelOracleTracerTest, SerialModeSpawnsNoWorkers) {
  // workers <= 1 degrades to an inline OracleTracer: usable immediately,
  // no finish() required before reading results mid-stream semantics.
  ParallelOracleTracer tracer(2, 1);
  for (int i = 0; i < 1'000; ++i) {
    tracer.observe(static_cast<std::uint32_t>(i % 2), 0x2000, false,
                   static_cast<util::Cycles>(i * 5));
  }
  EXPECT_EQ(tracer.accesses_seen(), 1'000u);
  EXPECT_GT(tracer.matrix().total(), 0u);
}

}  // namespace
}  // namespace spcd::core
