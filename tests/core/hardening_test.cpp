// The adversarial-hardening defenses (DESIGN.md §13): anomaly scoring and
// confidence-weighted matrix increments in the detector, and the remap
// guards (rate limiter, probation/rollback) in the kernel — each exercised
// against the attack it was built for.
#include <gtest/gtest.h>

#include "chaos/adversary.hpp"
#include "core/policy.hpp"
#include "core/spcd_detector.hpp"
#include "core/spcd_kernel.hpp"
#include "sim/machine.hpp"
#include "workloads/prodcons.hpp"

namespace spcd::core {
namespace {

mem::FaultEvent fault(std::uint64_t vaddr, std::uint32_t tid,
                      util::Cycles time) {
  mem::FaultEvent e;
  e.vaddr = vaddr;
  e.vpn = vaddr >> 12;
  e.tid = tid;
  e.time = time;
  e.kind = mem::FaultKind::kFirstTouch;
  return e;
}

SpcdConfig hardened_config() {
  SpcdConfig c;
  c.hardening.enabled = true;
  c.hardening.anomaly_window_faults = 64;  // small windows for short tests
  return c;
}

/// A skew-style attack stream: pairs (1,2), (3,4), (5,6) communicate
/// honestly on their own regions while thread 0 piggybacks on every pair
/// region and sprays fresh flood regions — high fault rate, high partner
/// entropy.
void attack_stream(SpcdDetector& d, std::uint32_t rounds) {
  util::Cycles t = 0;
  std::uint64_t flood = 0x0CD0'0000;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    for (std::uint32_t p = 0; p < 3; ++p) {
      const std::uint64_t region = (0x100 + p) << 12;
      d.on_fault(fault(region, 2 * p + 1, ++t));
      d.on_fault(fault(region, 2 * p + 2, ++t));
      d.on_fault(fault(region, 0, ++t));
      d.on_fault(fault((flood++) << 12, 0, ++t));
    }
  }
}

TEST(HardeningDetectorTest, AnomalyScorerFlagsTheFlooder) {
  SpcdDetector detector(hardened_config(), 8);
  attack_stream(detector, 30);
  EXPECT_GT(detector.anomalies_flagged(), 0u);
}

TEST(HardeningDetectorTest, HonestTrafficIsNotFlagged) {
  SpcdDetector detector(hardened_config(), 8);
  // The same pairs, no attacker: everyone's fault rate sits at its fair
  // share and entropy is low (one partner each).
  util::Cycles t = 0;
  for (std::uint32_t r = 0; r < 60; ++r) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      const std::uint64_t region = (0x100 + p) << 12;
      detector.on_fault(fault(region, 2 * p, ++t));
      detector.on_fault(fault(region, 2 * p + 1, ++t));
    }
  }
  EXPECT_EQ(detector.anomalies_flagged(), 0u);
}

TEST(HardeningDetectorTest, FlaggedSourcesAreDiscounted) {
  SpcdConfig plain;
  SpcdDetector unhardened(plain, 8);
  SpcdDetector hardened(hardened_config(), 8);
  attack_stream(unhardened, 60);
  attack_stream(hardened, 60);

  // Honest pair edges survive in both detectors...
  EXPECT_GT(hardened.matrix().at(1, 2), 0u);
  // ...but the attacker's fabricated edges are thinned once it is flagged.
  std::uint64_t attacker_plain = 0;
  std::uint64_t attacker_hardened = 0;
  for (std::uint32_t j = 1; j < 8; ++j) {
    attacker_plain += unhardened.matrix().at(0, j);
    attacker_hardened += hardened.matrix().at(0, j);
  }
  EXPECT_LT(attacker_hardened, attacker_plain / 2);
}

TEST(HardeningDetectorTest, PhantomFaultsFabricateCommunication) {
  // Thread 0 faults on private regions only: a clean detector sees zero
  // communication, a covert adversary fabricates a colluding pair.
  SpcdConfig plain;
  SpcdDetector clean(plain, 4);
  chaos::AdversaryConfig adv;
  adv.kind = chaos::AdversaryKind::kCovert;
  adv.intensity = 1.0;
  chaos::AdversaryEngine engine(adv, /*seed=*/11, 4,
                                plain.table.granularity_shift);
  SpcdDetector attacked(plain, 4, nullptr, &engine);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto e = fault(0x10000ULL + (i << 12), 0, 10 * (i + 1));
    clean.on_fault(e);
    attacked.on_fault(e);
  }
  EXPECT_EQ(clean.matrix().total(), 0u);
  EXPECT_GT(attacked.matrix().total(), 0u);
  // covert emits a pair of phantoms per real fault at intensity 1.
  EXPECT_EQ(attacked.faults_seen(), 300u);
  EXPECT_EQ(engine.counters().phantom_faults, 200u);
}

// --- kernel guards, driven end to end on the simulator ---

workloads::ProdConsParams small_prodcons() {
  workloads::ProdConsParams p;
  p.pairs = 4;  // 8 threads on the tiny machine
  p.iterations_per_phase = 40;
  p.phases = 1;
  p.refs_per_iter = 800;
  p.buffer_bytes = 32 * 1024;
  p.compute_cycles = 100;
  return p;
}

SpcdConfig kernel_config() {
  SpcdConfig c;
  c.injector_period = 50'000;
  c.mapping_interval = 100'000;
  c.min_matrix_total = 16;
  c.table.num_entries = 4096;
  return c;
}

TEST(HardeningKernelTest, RateLimiterDefersRepeatedRemaps) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), /*seed=*/7);
  sim::Engine engine(machine, as, wl,
                     os_spread_placement(machine.topology(), 8));
  SpcdConfig config = kernel_config();
  config.hardening.enabled = true;
  config.hardening.filter_hysteresis = 1;  // isolate the rate limiter
  config.hardening.remap_burst = 1;
  config.hardening.remap_refill_interval = 1'000'000'000;  // never refills
  config.hardening.probation_window = 0;  // probation off
  chaos::AdversaryConfig adv;
  adv.kind = chaos::AdversaryKind::kPhaseFlip;
  adv.intensity = 1.0;
  chaos::AdversaryEngine adversary(adv, 11, 8,
                                   config.table.granularity_shift);
  SpcdKernel kernel(config, 8, /*seed=*/3, nullptr, &adversary);
  kernel.install(engine);
  engine.run();

  // One token, no refill: at most one remap can be applied, and the
  // oscillating attack keeps re-triggering into the empty bucket.
  EXPECT_LE(kernel.migration_events(), 1u);
  EXPECT_GE(kernel.remaps_deferred(), 1u);
  EXPECT_EQ(kernel.remaps_rolled_back(), 0u);
}

TEST(HardeningKernelTest, HysteresisStarvesPhaseFlipAttack) {
  auto run = [](bool hardened) {
    sim::Machine machine(arch::tiny_test_machine());
    auto as = machine.make_address_space();
    workloads::ProducerConsumer wl(small_prodcons(), 7);
    sim::Engine engine(machine, as, wl,
                       os_spread_placement(machine.topology(), 8));
    SpcdConfig config = kernel_config();
    config.hardening.enabled = hardened;
    config.hardening.probation_window = 0;
    chaos::AdversaryConfig adv;
    adv.kind = chaos::AdversaryKind::kPhaseFlip;
    adv.intensity = 1.0;
    chaos::AdversaryEngine adversary(adv, 11, 8,
                                     config.table.granularity_shift);
    SpcdKernel kernel(config, 8, 3, nullptr, &adversary);
    kernel.install(engine);
    engine.run();
    return kernel.migration_events();
  };
  // The oscillation churns the unhardened mapper; the persistence
  // requirement keeps the hardened one at least as quiet.
  EXPECT_LE(run(true), run(false));
}

TEST(HardeningKernelTest, ProbationRollsBackBadRemapAndRestoresPlacement) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), 7);
  const auto initial = os_spread_placement(machine.topology(), 8);
  sim::Engine engine(machine, as, wl, initial);
  SpcdConfig config = kernel_config();
  config.hardening.enabled = true;
  config.hardening.filter_hysteresis = 1;  // do not delay the remap itself
  config.hardening.probation_window = 150'000;
  // Zero tolerance turns probation into a tripwire: any remote traffic
  // after the remap counts as a regression, forcing the rollback path.
  config.hardening.rollback_tolerance = 0.0;
  SpcdKernel kernel(config, 8, 3);
  kernel.install(engine);
  engine.run();

  ASSERT_GE(kernel.migration_events(), 1u);
  EXPECT_GE(kernel.remaps_rolled_back(), 1u);
  // Every applied remap was judged a regression and undone: the threads
  // end where they started.
  EXPECT_EQ(engine.placement(), initial);
}

TEST(HardeningKernelTest, TolerantProbationKeepsGoodRemap) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  workloads::ProducerConsumer wl(small_prodcons(), 7);
  const auto initial = os_spread_placement(machine.topology(), 8);
  sim::Engine engine(machine, as, wl, initial);
  SpcdConfig config = kernel_config();
  config.hardening.enabled = true;
  config.hardening.filter_hysteresis = 1;
  config.hardening.probation_window = 150'000;
  // Generous tolerance: the genuine pair-colocation remap must survive.
  config.hardening.rollback_tolerance = 100.0;
  SpcdKernel kernel(config, 8, 3);
  kernel.install(engine);
  engine.run();

  EXPECT_GE(kernel.migration_events(), 1u);
  EXPECT_EQ(kernel.remaps_rolled_back(), 0u);
  EXPECT_NE(engine.placement(), initial);
}

}  // namespace
}  // namespace spcd::core
