#include "core/data_mapper.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "core/spcd_kernel.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace spcd::core {
namespace {

/// Two threads on different sockets; thread 1 hammers a page whose frame
/// lives on thread 0's node (first touch by thread 0).
class RemoteHammer final : public sim::Workload {
 public:
  std::string name() const override { return "remote-hammer"; }
  std::uint32_t num_threads() const override { return 2; }
  std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t tid,
                                                  std::uint64_t) override {
    class P final : public sim::ThreadProgram {
     public:
      explicit P(std::uint32_t tid) : tid_(tid) {}
      sim::Op next() override {
        if (tid_ == 0) {
          // First-toucher: touch the page once, then work privately.
          if (n_ == 0) {
            ++n_;
            return sim::Op::access(0x5000, true, 1, 10);
          }
          if (n_++ > 20000) return sim::Op::finish();
          return sim::Op::access(0x900000 + (n_ % 512) * 64, false, 1, 50);
        }
        if (n_++ > 20000) return sim::Op::finish();
        return sim::Op::access(0x5000 + (n_ % 64) * 8, false, 1, 50);
      }

     private:
      std::uint32_t tid_;
      std::uint64_t n_ = 0;
    };
    return std::make_unique<P>(tid);
  }
};

TEST(DataMapperTest, MigratesPageTowardItsUser) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  RemoteHammer wl;
  // Thread 0 on socket 0, thread 1 on socket 1.
  sim::Engine engine(machine, as, wl, {0, 4});

  SpcdConfig config;
  config.enable_data_mapping = true;
  config.injector_period = 50'000;
  config.table.num_entries = 1024;
  SpcdKernel kernel(config, 2, 1);
  kernel.install(engine);
  engine.run();

  // The hammered page must have moved to socket 1.
  const mem::Pte* entry = as.page_table().walk(0x5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(mem::FrameAllocator::node_of(mem::pte::frame_of(*entry)), 1u);
  EXPECT_GE(kernel.pages_migrated(), 1u);
  EXPECT_GE(engine.counters().page_migrations, 1u);
}

TEST(DataMapperTest, DisabledByDefault) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  RemoteHammer wl;
  sim::Engine engine(machine, as, wl, {0, 4});
  SpcdConfig config;
  config.injector_period = 50'000;
  SpcdKernel kernel(config, 2, 1);
  kernel.install(engine);
  engine.run();
  EXPECT_EQ(kernel.pages_migrated(), 0u);
  EXPECT_EQ(engine.counters().page_migrations, 0u);
}

TEST(DataMapperTest, LocalFaultsDoNotTriggerMigration) {
  DataMapper mapper(DataMapperConfig{});
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  // Minimal engine to bind against.
  class Idle final : public sim::Workload {
   public:
    std::string name() const override { return "idle"; }
    std::uint32_t num_threads() const override { return 1; }
    std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t,
                                                    std::uint64_t) override {
      class P final : public sim::ThreadProgram {
       public:
        sim::Op next() override { return sim::Op::finish(); }
      };
      return std::make_unique<P>();
    }
  };
  Idle wl;
  sim::Engine engine(machine, as, wl, {0});
  mapper.bind(engine);

  // Page on node 0, faults from ctx 0 (socket 0): local, never migrates.
  (void)as.translate(0x3000, 0, 0, 0, 0);
  mem::FaultEvent e;
  e.vaddr = 0x3000;
  e.vpn = 3;
  e.tid = 0;
  e.ctx = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(mapper.on_fault(e), 0u);
  }
  EXPECT_EQ(mapper.pages_migrated(), 0u);
}

TEST(DataMapperTest, StreakThresholdRequiresRepeatedRemoteFaults) {
  DataMapperConfig config;
  config.streak_threshold = 3;
  DataMapper mapper(config);
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  class Idle final : public sim::Workload {
   public:
    std::string name() const override { return "idle"; }
    std::uint32_t num_threads() const override { return 1; }
    std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t,
                                                    std::uint64_t) override {
      class P final : public sim::ThreadProgram {
       public:
        sim::Op next() override { return sim::Op::finish(); }
      };
      return std::make_unique<P>();
    }
  };
  Idle wl;
  sim::Engine engine(machine, as, wl, {0});
  mapper.bind(engine);

  (void)as.translate(0x3000, 0, 0, /*touch_node=*/0, 0);
  mem::FaultEvent e;
  e.vaddr = 0x3000;
  e.vpn = 3;
  e.tid = 1;
  e.ctx = 4;  // socket 1 on the tiny machine
  EXPECT_EQ(mapper.on_fault(e), 0u);  // streak 1
  EXPECT_EQ(mapper.on_fault(e), 0u);  // streak 2
  EXPECT_GT(mapper.on_fault(e), 0u);  // streak 3: migrate, cost charged
  EXPECT_EQ(mapper.pages_migrated(), 1u);
  const mem::Pte* entry = as.page_table().walk(3);
  EXPECT_EQ(mem::FrameAllocator::node_of(mem::pte::frame_of(*entry)), 1u);
}

TEST(AddressSpaceMigratePageTest, PreservesFlagsAndChangesFrame) {
  mem::FrameAllocator frames(2);
  mem::AddressSpace as(frames, 12);
  (void)as.translate(0x7000, 0, 0, 0, 0);
  const mem::Pte before = *as.page_table().walk(7);
  const std::uint64_t new_frame = as.migrate_page(7, 1);
  const mem::Pte after = *as.page_table().walk(7);
  EXPECT_EQ(mem::pte::frame_of(after), new_frame);
  EXPECT_EQ(mem::FrameAllocator::node_of(new_frame), 1u);
  EXPECT_EQ(before & 0xfff, after & 0xfff);  // flag bits preserved
  EXPECT_TRUE(mem::pte::is_present(after));
}

}  // namespace
}  // namespace spcd::core
