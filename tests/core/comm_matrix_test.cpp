#include "core/comm_matrix.hpp"

#include <gtest/gtest.h>

#include <random>

namespace spcd::core {
namespace {

// The pre-optimization partner rule: linear scan of the row, first maximum
// wins (so ties go to the lowest thread id). The incrementally maintained
// partner must agree with this at every point in any add() sequence.
std::int32_t reference_partner(const CommMatrix& m, std::uint32_t t) {
  std::int32_t best = -1;
  std::uint64_t best_amount = 0;
  for (std::uint32_t u = 0; u < m.size(); ++u) {
    if (u == t) continue;
    const std::uint64_t v = m.at(t, u);
    if (v > best_amount) {
      best_amount = v;
      best = static_cast<std::int32_t>(u);
    }
  }
  return best;
}

TEST(CommMatrixTest, StartsEmpty) {
  CommMatrix m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.at(0, 1), 0u);
  EXPECT_EQ(m.partner_of(0), -1);
}

TEST(CommMatrixTest, AddIsSymmetric) {
  CommMatrix m(4);
  m.add(1, 3, 5);
  EXPECT_EQ(m.at(1, 3), 5u);
  EXPECT_EQ(m.at(3, 1), 5u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrixTest, TotalCountsPairsOnce) {
  CommMatrix m(3);
  m.add(0, 1, 2);
  m.add(1, 2, 3);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrixTest, PartnerIsArgmax) {
  CommMatrix m(4);
  m.add(0, 1, 2);
  m.add(0, 2, 7);
  m.add(0, 3, 1);
  EXPECT_EQ(m.partner_of(0), 2);
}

TEST(CommMatrixTest, PartnerTieGoesToLowestId) {
  CommMatrix m(4);
  m.add(0, 3, 5);
  m.add(0, 1, 5);
  EXPECT_EQ(m.partner_of(0), 1);
}

TEST(CommMatrixTest, ClearResets) {
  CommMatrix m(3);
  m.add(0, 1, 4);
  m.clear();
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.partner_of(0), -1);
}

TEST(CommMatrixTest, SinceReturnsDeltaAfterSnapshot) {
  CommMatrix m(3);
  m.add(0, 1, 5);
  const CommMatrix::Snapshot snap = m.snapshot();
  m.add(0, 1, 3);
  m.add(1, 2, 2);
  const CommMatrix d = m.since(snap);
  EXPECT_EQ(d.at(0, 1), 3u);
  EXPECT_EQ(d.at(1, 2), 2u);
  EXPECT_EQ(d.total(), 5u);
  EXPECT_EQ(d.partner_of(0), 1);
}

TEST(CommMatrixTest, SinceIsEmptyWhenEpochUnchanged) {
  CommMatrix m(3);
  m.add(0, 1, 5);
  const CommMatrix d = m.since(m.snapshot());
  EXPECT_EQ(d.total(), 0u);
}

TEST(CommMatrixTest, SinceSaturatesRatherThanWrapping) {
  // A snapshot of a *different* (larger) matrix: cells where the snapshot
  // exceeds the current value clamp to zero instead of wrapping around.
  CommMatrix now(3), bigger(3);
  bigger.add(0, 1, 8);
  now.add(0, 1, 5);
  now.add(1, 2, 2);
  const CommMatrix d = now.since(bigger.snapshot());
  EXPECT_EQ(d.at(0, 1), 0u);
  EXPECT_EQ(d.at(1, 2), 2u);
}

TEST(CommMatrixTest, SnapshotRoundTripsThroughRestore) {
  CommMatrix m(4);
  m.add(0, 2, 7);
  m.add(1, 3, 2);
  m.add(0, 1, 7);
  const CommMatrix restored{m.snapshot()};
  EXPECT_EQ(restored.total(), m.total());
  EXPECT_EQ(restored.epoch(), m.epoch());
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(restored.partner_of(t), m.partner_of(t));
    for (std::uint32_t u = 0; u < 4; ++u) {
      EXPECT_EQ(restored.at(t, u), m.at(t, u));
    }
  }
}

TEST(CommMatrixTest, PartnerMatchesLinearScanReference) {
  std::mt19937 rng(123);
  constexpr std::uint32_t n = 9;
  CommMatrix m(n);
  for (int step = 0; step < 500; ++step) {
    const auto a = static_cast<std::uint32_t>(rng() % n);
    const auto b = static_cast<std::uint32_t>(rng() % n);
    if (a == b) continue;
    m.add(a, b, rng() % 4);  // zero-amount adds included on purpose
    for (std::uint32_t t = 0; t < n; ++t) {
      ASSERT_EQ(m.partner_of(t), reference_partner(m, t))
          << "thread " << t << " at step " << step;
    }
  }
}

TEST(CommMatrixTest, SinceMatchesElementwiseReference) {
  std::mt19937 rng(321);
  constexpr std::uint32_t n = 7;
  CommMatrix m(n);
  for (int step = 0; step < 50; ++step) {
    const auto a = static_cast<std::uint32_t>(rng() % n);
    const auto b = static_cast<std::uint32_t>(rng() % n);
    if (a != b) m.add(a, b, 1 + rng() % 5);
  }
  const CommMatrix::Snapshot snap = m.snapshot();
  const CommMatrix before{snap};
  for (int step = 0; step < 50; ++step) {
    const auto a = static_cast<std::uint32_t>(rng() % n);
    const auto b = static_cast<std::uint32_t>(rng() % n);
    if (a != b) m.add(a, b, 1 + rng() % 5);
  }
  const CommMatrix d = m.since(snap);
  for (std::uint32_t t = 0; t < n; ++t) {
    for (std::uint32_t u = 0; u < n; ++u) {
      EXPECT_EQ(d.at(t, u), m.at(t, u) - before.at(t, u));
    }
    EXPECT_EQ(d.partner_of(t), reference_partner(d, t));
  }
}

TEST(CommMatrixTest, CorrelationOfIdenticalPatternsIsOne) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 10);
  a.add(2, 3, 4);
  b.add(0, 1, 20);  // scaled version: same pattern
  b.add(2, 3, 8);
  EXPECT_NEAR(a.correlation(b), 1.0, 1e-12);
}

TEST(CommMatrixTest, CorrelationOfOppositePatterns) {
  CommMatrix a(3), b(3);
  a.add(0, 1, 10);
  a.add(0, 2, 0);  // explicit zero is fine via at(); skip add of zero
  b.add(0, 2, 10);
  EXPECT_LT(a.correlation(b), 0.0);
}

TEST(CommMatrixTest, GroupWeightSumsPairwise) {
  CommMatrix m(6);
  m.add(0, 2, 1);
  m.add(0, 3, 2);
  m.add(1, 2, 4);
  m.add(1, 3, 8);
  m.add(0, 1, 100);  // intra-group, must not count
  const std::uint32_t a[] = {0, 1};
  const std::uint32_t b[] = {2, 3};
  EXPECT_EQ(m.group_weight(a, b), 15u);
}

TEST(CommMatrixTest, AsDoubleMatchesCells) {
  CommMatrix m(2);
  m.add(0, 1, 9);
  const auto d = m.as_double();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[1], 9.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(CommMatrixDeathTest, SelfCommunicationAborts) {
  CommMatrix m(3);
  EXPECT_DEATH(m.add(1, 1), "Precondition");
}

TEST(CommMatrixDeathTest, OutOfRangeAborts) {
  CommMatrix m(3);
  EXPECT_DEATH(m.add(0, 3), "Precondition");
}

}  // namespace
}  // namespace spcd::core
