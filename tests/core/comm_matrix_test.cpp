#include "core/comm_matrix.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

TEST(CommMatrixTest, StartsEmpty) {
  CommMatrix m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.at(0, 1), 0u);
  EXPECT_EQ(m.partner_of(0), -1);
}

TEST(CommMatrixTest, AddIsSymmetric) {
  CommMatrix m(4);
  m.add(1, 3, 5);
  EXPECT_EQ(m.at(1, 3), 5u);
  EXPECT_EQ(m.at(3, 1), 5u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrixTest, TotalCountsPairsOnce) {
  CommMatrix m(3);
  m.add(0, 1, 2);
  m.add(1, 2, 3);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrixTest, PartnerIsArgmax) {
  CommMatrix m(4);
  m.add(0, 1, 2);
  m.add(0, 2, 7);
  m.add(0, 3, 1);
  EXPECT_EQ(m.partner_of(0), 2);
}

TEST(CommMatrixTest, PartnerTieGoesToLowestId) {
  CommMatrix m(4);
  m.add(0, 3, 5);
  m.add(0, 1, 5);
  EXPECT_EQ(m.partner_of(0), 1);
}

TEST(CommMatrixTest, ClearResets) {
  CommMatrix m(3);
  m.add(0, 1, 4);
  m.clear();
  EXPECT_EQ(m.total(), 0u);
}

TEST(CommMatrixTest, DiffIsSaturating) {
  CommMatrix now(3), earlier(3);
  earlier.add(0, 1, 5);
  now.add(0, 1, 8);
  now.add(1, 2, 2);
  const CommMatrix d = now.diff(earlier);
  EXPECT_EQ(d.at(0, 1), 3u);
  EXPECT_EQ(d.at(1, 2), 2u);
  // Saturation: earlier larger than now yields 0, not wraparound.
  const CommMatrix d2 = earlier.diff(now);
  EXPECT_EQ(d2.at(0, 1), 0u);
}

TEST(CommMatrixTest, CorrelationOfIdenticalPatternsIsOne) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 10);
  a.add(2, 3, 4);
  b.add(0, 1, 20);  // scaled version: same pattern
  b.add(2, 3, 8);
  EXPECT_NEAR(a.correlation(b), 1.0, 1e-12);
}

TEST(CommMatrixTest, CorrelationOfOppositePatterns) {
  CommMatrix a(3), b(3);
  a.add(0, 1, 10);
  a.add(0, 2, 0);  // explicit zero is fine via at(); skip add of zero
  b.add(0, 2, 10);
  EXPECT_LT(a.correlation(b), 0.0);
}

TEST(CommMatrixTest, GroupWeightSumsPairwise) {
  CommMatrix m(6);
  m.add(0, 2, 1);
  m.add(0, 3, 2);
  m.add(1, 2, 4);
  m.add(1, 3, 8);
  m.add(0, 1, 100);  // intra-group, must not count
  const std::uint32_t a[] = {0, 1};
  const std::uint32_t b[] = {2, 3};
  EXPECT_EQ(m.group_weight(a, b), 15u);
}

TEST(CommMatrixTest, AsDoubleMatchesCells) {
  CommMatrix m(2);
  m.add(0, 1, 9);
  const auto d = m.as_double();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[1], 9.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(CommMatrixDeathTest, SelfCommunicationAborts) {
  CommMatrix m(3);
  EXPECT_DEATH(m.add(1, 1), "Precondition");
}

TEST(CommMatrixDeathTest, OutOfRangeAborts) {
  CommMatrix m(3);
  EXPECT_DEATH(m.add(0, 3), "Precondition");
}

}  // namespace
}  // namespace spcd::core
