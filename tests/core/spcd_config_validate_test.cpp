#include "core/spcd_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/spcd_kernel.hpp"

namespace spcd::core {
namespace {

TEST(SpcdConfigValidateTest, DefaultConfigurationIsValid) {
  EXPECT_EQ(SpcdConfig{}.validate(), "");
}

TEST(SpcdConfigValidateTest, RejectsEachBadKnob) {
  struct Case {
    const char* label;
    void (*mutate)(SpcdConfig&);
  };
  const Case cases[] = {
      {"zero fault ratio",
       [](SpcdConfig& c) { c.extra_fault_ratio = 0.0; }},
      {"fault ratio above 1",
       [](SpcdConfig& c) { c.extra_fault_ratio = 1.5; }},
      {"zero injector period",
       [](SpcdConfig& c) { c.injector_period = 0; }},
      {"zero mapping interval",
       [](SpcdConfig& c) { c.mapping_interval = 0; }},
      {"empty sharing table",
       [](SpcdConfig& c) { c.table.num_entries = 0; }},
      {"sub-byte granularity",
       [](SpcdConfig& c) { c.table.granularity_shift = 0; }},
      {"absurd granularity",
       [](SpcdConfig& c) { c.table.granularity_shift = 37; }},
      {"single-sharer table",
       [](SpcdConfig& c) { c.table.max_sharers = 1; }},
      {"negative sample floor",
       [](SpcdConfig& c) { c.min_sample_frac = -0.1; }},
      {"negative startup boost",
       [](SpcdConfig& c) { c.startup_boost = -1.0; }},
      {"zero gain threshold",
       [](SpcdConfig& c) { c.mapping_gain_threshold = 0.0; }},
      {"negative move penalty",
       [](SpcdConfig& c) { c.move_penalty_frac = -0.5; }},
      {"zero filter threshold",
       [](SpcdConfig& c) { c.filter_threshold = 0; }},
      {"flapping filter margin",
       [](SpcdConfig& c) { c.filter_margin = 0.5; }},
      {"negative refine growth",
       [](SpcdConfig& c) { c.refine_growth = -1.0; }},
      {"zero saturation ratio",
       [](SpcdConfig& c) { c.saturation_collision_ratio = 0.0; }},
      {"overrun factor at 1",
       [](SpcdConfig& c) { c.overrun_skip_factor = 1.0; }},
      {"unbounded retries",
       [](SpcdConfig& c) { c.migration_max_retries = 33; }},
      {"zero retry backoff",
       [](SpcdConfig& c) { c.migration_retry_backoff = 0; }},
  };
  for (const Case& c : cases) {
    SpcdConfig config;
    c.mutate(config);
    EXPECT_NE(config.validate(), "") << c.label;
  }
}

TEST(SpcdConfigValidateTest, DisablingRetriesAllowsZeroBackoff) {
  SpcdConfig config;
  config.migration_max_retries = 0;
  config.migration_retry_backoff = 0;
  EXPECT_EQ(config.validate(), "");
}

TEST(SpcdConfigValidateTest, KernelConstructorThrowsRecoverably) {
  SpcdConfig bad;
  bad.injector_period = 0;
  EXPECT_THROW(SpcdKernel(bad, 4, /*seed=*/1), ConfigError);
  try {
    SpcdKernel kernel(bad, 4, 1);
    FAIL() << "expected ConfigError";
  } catch (const std::invalid_argument& e) {
    // ConfigError derives from std::invalid_argument, so pre-existing
    // catch sites keep working.
    EXPECT_NE(std::string(e.what()).find("injector_period"),
              std::string::npos);
  }
  EXPECT_NO_THROW(SpcdKernel(SpcdConfig{}, 4, 1));
}

}  // namespace
}  // namespace spcd::core
