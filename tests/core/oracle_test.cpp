#include "core/oracle.hpp"

#include <gtest/gtest.h>

namespace spcd::core {
namespace {

TEST(OracleTracerTest, DirectObservationBuildsMatrix) {
  OracleTracer tracer(2, /*granularity_shift=*/6);
  tracer.observe(0, 0x1000, true, 10);
  tracer.observe(1, 0x1008, false, 20);  // same 64-byte line
  EXPECT_EQ(tracer.matrix().at(0, 1), 1u);
  EXPECT_EQ(tracer.accesses_seen(), 2u);
}

TEST(OracleTracerTest, DifferentLinesNoCommunication) {
  OracleTracer tracer(2, 6);
  tracer.observe(0, 0x1000, true, 10);
  tracer.observe(1, 0x1040, false, 20);
  EXPECT_EQ(tracer.matrix().total(), 0u);
}

TEST(OracleTracerTest, RepeatAccessesAccumulate) {
  OracleTracer tracer(2, 6);
  tracer.observe(0, 0x1000, true, 1);
  for (util::Cycles i = 0; i < 10; ++i) {
    tracer.observe(1, 0x1000, false, 2 + i);
  }
  EXPECT_EQ(tracer.matrix().at(0, 1), 10u);
}

TEST(OracleTracerTest, TimeWindowFiltersStaleSharing) {
  OracleTracer tracer(2, 6, /*time_window=*/100);
  tracer.observe(0, 0x1000, true, 10);
  tracer.observe(1, 0x1000, false, 500);  // stale
  EXPECT_EQ(tracer.matrix().total(), 0u);
  tracer.observe(0, 0x1000, true, 550);  // within window of thread 1
  EXPECT_EQ(tracer.matrix().at(0, 1), 1u);
}

TEST(OracleTracerTest, SharerListEvictsOldest) {
  OracleTracer tracer(12, 6);
  for (std::uint32_t t = 0; t < 9; ++t) {
    tracer.observe(t, 0x2000, false, 10 * t + 1);
  }
  // Thread 0 (oldest) was evicted from the 8-entry region list; thread 9
  // communicates with 1..8 only.
  tracer.observe(9, 0x2000, false, 1000);
  EXPECT_EQ(tracer.matrix().at(9, 0), 0u);
  EXPECT_EQ(tracer.matrix().at(9, 1), 1u);
  EXPECT_EQ(tracer.matrix().at(9, 8), 1u);
}

TEST(OracleTracerTest, CoarserGranularityMergesLines) {
  OracleTracer tracer(2, /*granularity_shift=*/12);  // page granularity
  tracer.observe(0, 0x1000, true, 1);
  tracer.observe(1, 0x1FC0, false, 2);  // same page, far-away line
  EXPECT_EQ(tracer.matrix().at(0, 1), 1u);
}

}  // namespace
}  // namespace spcd::core
