#include "core/mapping_strategy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/mapper.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace spcd::core {
namespace {

arch::Topology xeon() {
  return arch::Topology(arch::TopologySpec{.sockets = 2,
                                           .cores_per_socket = 8,
                                           .smt_per_core = 2});
}

CommMatrix random_matrix(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  CommMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      const auto w = rng.below(100);
      if (w > 0) m.add(i, j, w);
    }
  }
  return m;
}

TEST(MappingStrategyTest, RegistryAgreesWithNameList) {
  const auto names = mapping_strategy_names();
  const auto registry = mapping_registry();
  ASSERT_EQ(registry.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(registry[i].name, names[i]);
    EXPECT_FALSE(registry[i].summary.empty()) << names[i];
    EXPECT_NE(registry[i].make, nullptr) << names[i];
  }
}

TEST(MappingStrategyTest, ParseAcceptsEveryRegisteredName) {
  for (const auto name : mapping_strategy_names()) {
    const auto entry = parse_mapping_strategy(name);
    ASSERT_TRUE(entry.has_value()) << name;
    EXPECT_EQ(entry->name, name);
  }
}

TEST(MappingStrategyTest, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_mapping_strategy("").has_value());
  EXPECT_FALSE(parse_mapping_strategy("bogus").has_value());
  EXPECT_FALSE(parse_mapping_strategy("Blossom").has_value());  // case-exact
}

TEST(MappingStrategyTest, ListJoinsRegistryNames) {
  EXPECT_EQ(mapping_strategy_list(), "blossom|greedy|hierarchical");
}

TEST(MappingStrategyTest, FactoryBuildsEachStrategyUnderItsName) {
  for (const auto name : mapping_strategy_names()) {
    MappingConfig config;
    config.strategy = std::string(name);
    const auto strategy = make_mapping_strategy(config);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
}

TEST(MappingStrategyTest, FactoryThrowsConfigErrorOnBadConfig) {
  MappingConfig unknown;
  unknown.strategy = "bogus";
  EXPECT_THROW(make_mapping_strategy(unknown), ConfigError);

  MappingConfig bad_cutoff;
  bad_cutoff.strategy = "hierarchical";
  bad_cutoff.blossom_cutoff = 1;
  EXPECT_THROW(make_mapping_strategy(bad_cutoff), ConfigError);

  MappingConfig bad_passes;
  bad_passes.strategy = "hierarchical";
  bad_passes.refine_passes = 65;
  EXPECT_THROW(make_mapping_strategy(bad_passes), ConfigError);
}

TEST(MappingStrategyTest, SpcdConfigValidateFoldsMappingKnobs) {
  SpcdConfig config;
  EXPECT_EQ(config.validate(), "");
  config.mapping.strategy = "bogus";
  EXPECT_NE(config.validate(), "");
  config.mapping.strategy = "hierarchical";
  EXPECT_EQ(config.validate(), "");
  config.mapping.refine_jobs = 1025;
  EXPECT_NE(config.validate(), "");
}

TEST(MappingStrategyTest, BlossomIsBitIdenticalToTheLegacyFunction) {
  const auto topo = xeon();
  const auto m = random_matrix(32, 7);
  const auto strategy = make_mapping_strategy({});
  const MappingResult via_api = strategy->map(m, topo);
  const MappingResult legacy = compute_mapping(m, topo);
  EXPECT_EQ(via_api.placement, legacy.placement);
  EXPECT_EQ(via_api.rounds, legacy.rounds);

  // And with a current placement (the placement-stable path).
  const auto current = random_placement(topo, 32, 3);
  EXPECT_EQ(strategy->map(m, topo, current).placement,
            compute_mapping(m, topo, current).placement);
}

TEST(MappingStrategyTest, GreedyIsBitIdenticalToTheLegacyFunction) {
  const auto topo = xeon();
  const auto m = random_matrix(32, 11);
  MappingConfig config;
  config.strategy = "greedy";
  const auto strategy = make_mapping_strategy(config);
  EXPECT_EQ(strategy->map(m, topo).placement,
            compute_mapping_greedy(m, topo).placement);
}

TEST(MappingStrategyTest, EveryStrategyProducesAnInjectivePlacement) {
  const auto topo = xeon();
  const auto m = random_matrix(32, 23);
  for (const auto name : mapping_strategy_names()) {
    MappingConfig config;
    config.strategy = std::string(name);
    const auto placement =
        make_mapping_strategy(config)->map(m, topo).placement;
    ASSERT_EQ(placement.size(), 32u) << name;
    std::set<arch::ContextId> used;
    for (const auto ctx : placement) {
      EXPECT_LT(ctx, topo.num_contexts()) << name;
      EXPECT_TRUE(used.insert(ctx).second) << name;
    }
  }
}

TEST(MappingStrategyTest, HierarchicalDecisionCostIsFarBelowBlossomAtScale) {
  const SpcdConfig config;
  const auto blossom = make_mapping_strategy({});
  MappingConfig hier_cfg;
  hier_cfg.strategy = "hierarchical";
  const auto hier = make_mapping_strategy(hier_cfg);
  // At the paper's 32 threads the models may be comparable; at 1024 the
  // cubic Edmonds model must dwarf the near-linear multilevel one.
  EXPECT_LT(hier->decision_cost(1024, config),
            blossom->decision_cost(1024, config) / 10);
}

}  // namespace
}  // namespace spcd::core
