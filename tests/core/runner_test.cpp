// Integration tests of the experiment pipeline on a scaled-down workload:
// the full OS / random / oracle / SPCD comparison on the tiny machine.
#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "workloads/npb.hpp"

namespace spcd::core {
namespace {

RunnerConfig fast_config() {
  RunnerConfig config;
  config.repetitions = 2;
  // Scale the SPCD cadence with the shorter runs.
  config.spcd.injector_period = 100'000;
  config.spcd.mapping_interval = 200'000;
  config.spcd.min_matrix_total = 32;
  return config;
}

WorkloadFactory tiny_sp() {
  return [](std::uint64_t seed) {
    return workloads::make_nas("sp", seed, /*scale=*/0.12);
  };
}

TEST(RunnerTest, RunOnceProducesSaneMetrics) {
  Runner runner(fast_config());
  const auto m = runner.run_once("sp", tiny_sp(), MappingPolicy::kOs, 0);
  EXPECT_GT(m.exec_seconds, 0.0);
  EXPECT_GT(m.instructions, 0u);
  EXPECT_GT(m.l2_mpki, 0.0);
  EXPECT_GT(m.package_joules, 0.0);
  EXPECT_GT(m.dram_joules, 0.0);
  EXPECT_EQ(m.migration_events, 0u);   // OS run has no SPCD
  EXPECT_EQ(m.injected_faults, 0u);
  EXPECT_EQ(m.detection_overhead, 0.0);
}

TEST(RunnerTest, RepetitionsAreDeterministicPerIndex) {
  Runner a(fast_config());
  Runner b(fast_config());
  const auto ma = a.run_once("sp", tiny_sp(), MappingPolicy::kOs, 1);
  const auto mb = b.run_once("sp", tiny_sp(), MappingPolicy::kOs, 1);
  EXPECT_DOUBLE_EQ(ma.exec_seconds, mb.exec_seconds);
  EXPECT_EQ(ma.instructions, mb.instructions);
}

TEST(RunnerTest, DifferentRepetitionsDiffer) {
  Runner runner(fast_config());
  const auto m0 = runner.run_once("sp", tiny_sp(), MappingPolicy::kOs, 0);
  const auto m1 = runner.run_once("sp", tiny_sp(), MappingPolicy::kOs, 1);
  EXPECT_NE(m0.exec_seconds, m1.exec_seconds);
}

TEST(RunnerTest, OraclePlacementIsCachedAndValid) {
  Runner runner(fast_config());
  const auto& p1 = runner.oracle_placement("sp", tiny_sp());
  EXPECT_EQ(p1.size(), 32u);
  const auto* matrix = runner.oracle_matrix("sp");
  ASSERT_NE(matrix, nullptr);
  EXPECT_GT(matrix->total(), 0u);
  const auto& p2 = runner.oracle_placement("sp", tiny_sp());
  EXPECT_EQ(&p1, &p2);  // same cached object
}

TEST(RunnerTest, SpcdRunRecordsMatrixAndOverheads) {
  Runner runner(fast_config());
  const auto m = runner.run_once("sp", tiny_sp(), MappingPolicy::kSpcd, 0);
  EXPECT_GT(m.injected_faults, 0u);
  EXPECT_GT(m.detection_overhead, 0.0);
  EXPECT_LT(m.detection_overhead, 0.10);
  ASSERT_NE(m.spcd_matrix, nullptr);
  EXPECT_GT(m.spcd_matrix->total(), 0u);
}

TEST(RunnerTest, RunPolicyReturnsAllRepetitions) {
  Runner runner(fast_config());
  const auto runs = runner.run_policy("sp", tiny_sp(), MappingPolicy::kRandom);
  EXPECT_EQ(runs.size(), 2u);
}

TEST(RunnerTest, AggregateComputesMeanAndCi) {
  std::vector<RunMetrics> runs(4);
  runs[0].exec_seconds = 1.0;
  runs[1].exec_seconds = 2.0;
  runs[2].exec_seconds = 3.0;
  runs[3].exec_seconds = 4.0;
  const auto ci = aggregate(
      runs, [](const RunMetrics& m) { return m.exec_seconds; });
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
  EXPECT_GT(ci.ci95, 0.0);
}

TEST(RunnerTest, InjectedRatioHelper) {
  RunMetrics m;
  m.minor_faults = 90;
  m.injected_faults = 10;
  EXPECT_DOUBLE_EQ(m.injected_fault_ratio(), 0.10);
  RunMetrics zero;
  EXPECT_EQ(zero.injected_fault_ratio(), 0.0);
}

// The headline integration property: on the communication-heavy SP-like
// kernel, the oracle mapping beats the OS scheduler on time and
// cache-to-cache traffic, and SPCD reduces c2c traffic relative to the OS.
TEST(RunnerTest, MappingOrderingMatchesPaperShape) {
  RunnerConfig config = fast_config();
  config.repetitions = 3;
  Runner runner(config);
  const auto factory = [](std::uint64_t seed) {
    return workloads::make_nas("sp", seed, /*scale=*/0.3);
  };
  const auto os = runner.run_policy("sp", factory, MappingPolicy::kOs);
  const auto oracle = runner.run_policy("sp", factory, MappingPolicy::kOracle);

  const auto os_time =
      aggregate(os, [](const RunMetrics& m) { return m.exec_seconds; });
  const auto oracle_time =
      aggregate(oracle, [](const RunMetrics& m) { return m.exec_seconds; });
  EXPECT_LT(oracle_time.mean, os_time.mean);

  const auto os_c2c = aggregate(os, [](const RunMetrics& m) {
    return static_cast<double>(m.c2c_transactions);
  });
  const auto oracle_c2c = aggregate(oracle, [](const RunMetrics& m) {
    return static_cast<double>(m.c2c_transactions);
  });
  EXPECT_LT(oracle_c2c.mean, 0.5 * os_c2c.mean);
}

}  // namespace
}  // namespace spcd::core
