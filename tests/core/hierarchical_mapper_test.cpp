#include "core/hierarchical_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/mapper.hpp"
#include "core/mapping_strategy.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace spcd::core {
namespace {

arch::Topology xeon() {
  return arch::Topology(arch::TopologySpec{.sockets = 2,
                                           .cores_per_socket = 8,
                                           .smt_per_core = 2});
}

/// Clustered matrix: all-pairs traffic inside blocks of 8, light ring
/// links between blocks, a sprinkle of background edges — the shape the
/// coarsening is built for.
CommMatrix clustered_matrix(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  CommMatrix m(n);
  for (std::uint32_t base = 0; base < n; base += 8) {
    const std::uint32_t end = std::min(base + 8, n);
    for (std::uint32_t i = base; i < end; ++i) {
      for (std::uint32_t j = i + 1; j < end; ++j) {
        m.add(i, j, 600 + rng.below(400));
      }
    }
    if (base > 0) m.add(base - 1, base, 120 + rng.below(60));
  }
  for (std::uint32_t e = 0; e < 2 * n; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a != b) m.add(std::min(a, b), std::max(a, b), 1 + rng.below(20));
  }
  return m;
}

void expect_valid_placement(const sim::Placement& p, std::uint32_t contexts) {
  std::set<arch::ContextId> used;
  for (const auto ctx : p) {
    EXPECT_LT(ctx, contexts);
    EXPECT_TRUE(used.insert(ctx).second) << "duplicate context " << ctx;
  }
}

TEST(HierarchicalMapperTest, CoarseningPartitionsTheThreads) {
  const auto m = clustered_matrix(64, 5);
  const Coarsening c = coarsen_comm_matrix(m, 8);
  ASSERT_LE(c.groups.size(), 8u);
  ASSERT_GE(c.groups.size(), 1u);
  std::vector<bool> seen(64, false);
  for (const auto& group : c.groups) {
    for (const std::uint32_t t : group) {
      ASSERT_LT(t, 64u);
      EXPECT_FALSE(seen[t]) << "thread " << t << " in two groups";
      seen[t] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(HierarchicalMapperTest, CoarseGroupOfAgreesWithGroupMembership) {
  const auto m = clustered_matrix(64, 6);
  const Coarsening c = coarsen_comm_matrix(m, 8);
  const auto ids = coarse_group_of(c);
  ASSERT_EQ(ids.size(), 64u);
  for (std::size_t g = 0; g < c.groups.size(); ++g) {
    for (const std::uint32_t t : c.groups[g]) {
      EXPECT_EQ(ids[t], g) << "levels walk disagrees for thread " << t;
    }
  }
}

TEST(HierarchicalMapperTest, FoldedWeightsAreExactGroupWeights) {
  const auto m = clustered_matrix(48, 7);
  const Coarsening c = coarsen_comm_matrix(m, 6);
  const std::size_t g = c.groups.size();
  ASSERT_EQ(c.weights.size(), g * g);
  for (std::size_t x = 0; x < g; ++x) {
    EXPECT_EQ(c.weights[x * g + x], 0u);
    for (std::size_t y = x + 1; y < g; ++y) {
      const std::uint64_t expected = m.group_weight(c.groups[x], c.groups[y]);
      EXPECT_EQ(c.weights[x * g + y], expected) << x << "," << y;
      EXPECT_EQ(c.weights[y * g + x], expected) << y << "," << x;
    }
  }
}

TEST(HierarchicalMapperTest, UncoarsenProjectsAssignmentsRoundTrip) {
  const auto m = clustered_matrix(32, 8);
  const Coarsening c = coarsen_comm_matrix(m, 4);
  std::vector<std::uint32_t> coarse(c.groups.size());
  for (std::size_t g = 0; g < coarse.size(); ++g) {
    coarse[g] = static_cast<std::uint32_t>(100 + g);
  }
  const auto fine = uncoarsen_assignment(c, coarse);
  ASSERT_EQ(fine.size(), 32u);
  const auto ids = coarse_group_of(c);
  for (std::uint32_t t = 0; t < 32; ++t) {
    EXPECT_EQ(fine[t], 100 + ids[t]);
  }
}

TEST(HierarchicalMapperTest, RefinementNeverIncreasesCost) {
  const auto topo = xeon();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto m = clustered_matrix(32, seed);
    sim::Placement placement = random_placement(topo, 32, seed);
    const double before = placement_comm_cost(m, topo, placement);
    const RefineStats stats = refine_placement(m, topo, placement, 4, 1);
    expect_valid_placement(placement, topo.num_contexts());
    const double after = placement_comm_cost(m, topo, placement);
    EXPECT_LE(after, before) << "seed " << seed;
    if (stats.swaps > 0) {
      EXPECT_LT(after, before) << "seed " << seed;
    }
  }
}

TEST(HierarchicalMapperTest, RefinementPullsAStrongPairOntoOneCore) {
  const auto topo = xeon();
  CommMatrix m(4);
  m.add(0, 1, 1000);
  // Thread 1 starts on the far socket; its SMT sibling slot next to
  // thread 0 is occupied by an uncommunicative thread 2.
  sim::Placement placement = {0, 16, 1, 17};
  const double before = placement_comm_cost(m, topo, placement);
  const RefineStats stats = refine_placement(m, topo, placement, 1, 1);
  EXPECT_GE(stats.swaps, 1u);
  EXPECT_EQ(topo.proximity(placement[0], placement[1]),
            arch::Proximity::kSameCore);
  EXPECT_LT(placement_comm_cost(m, topo, placement), before);
}

TEST(HierarchicalMapperTest, RefinementLeavesOvercommittedPlacementsAlone) {
  const auto topo = xeon();
  CommMatrix m(3);
  m.add(0, 1, 500);
  sim::Placement placement = {0, 0, 16};  // two threads on context 0
  const sim::Placement frozen = placement;
  const RefineStats stats = refine_placement(m, topo, placement, 2, 1);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(placement, frozen);
}

TEST(HierarchicalMapperTest, SmallInstancesMatchBlossomExactly) {
  // At or below the cutoff no coarsening happens, so with refinement off
  // the multilevel pipeline degenerates to the exact grouping tree.
  const auto topo = xeon();
  MappingConfig config;
  config.strategy = "hierarchical";
  config.refine_passes = 0;
  for (std::uint32_t n = 2; n <= 8; ++n) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      util::Xoshiro256 rng(seed * 101 + n);
      CommMatrix m(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
          const auto w = rng.below(1000);
          if (w > 0) m.add(i, j, w);
        }
      }
      const auto hier =
          hierarchical_mapping(m, topo, sim::Placement{}, config).placement;
      const auto exact = compute_mapping(m, topo).placement;
      EXPECT_EQ(hier, exact) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(HierarchicalMapperTest, RefinementOnlyImprovesTheFullPipeline) {
  const auto topo = xeon();
  const auto m = clustered_matrix(32, 12);
  MappingConfig off;
  off.strategy = "hierarchical";
  off.blossom_cutoff = 4;  // force real coarsening at n=32
  off.refine_passes = 0;
  MappingConfig on = off;
  on.refine_passes = 4;
  const double unrefined = placement_comm_cost(
      m, topo, hierarchical_mapping(m, topo, {}, off).placement);
  const double refined = placement_comm_cost(
      m, topo, hierarchical_mapping(m, topo, {}, on).placement);
  EXPECT_LE(refined, unrefined);
}

TEST(HierarchicalMapperTest, ResultIsIdenticalAtAnyRefineJobCount) {
  // 256 threads on the quad-socket preset crosses the parallel-scoring
  // threshold, so this exercises the frozen-gain fan-out for real.
  const arch::Topology topo(arch::TopologySpec{.sockets = 4,
                                               .cores_per_socket = 32,
                                               .smt_per_core = 2});
  const auto m = clustered_matrix(256, 21);
  MappingConfig config;
  config.strategy = "hierarchical";
  sim::Placement baseline;
  for (const std::uint32_t jobs : {1u, 2u, 7u}) {
    config.refine_jobs = jobs;
    const auto placement = hierarchical_mapping(m, topo, {}, config).placement;
    if (baseline.empty()) {
      baseline = placement;
      expect_valid_placement(baseline, topo.num_contexts());
    } else {
      EXPECT_EQ(placement, baseline) << "jobs=" << jobs;
    }
  }
}

TEST(HierarchicalMapperTest, ThousandContextSmoke) {
  const arch::Topology topo(arch::TopologySpec{.sockets = 8,
                                               .cores_per_socket = 64,
                                               .smt_per_core = 2});
  const auto m = clustered_matrix(1024, 17);
  MappingConfig config;
  config.strategy = "hierarchical";
  const auto result = hierarchical_mapping(m, topo, {}, config);
  ASSERT_EQ(result.placement.size(), 1024u);
  expect_valid_placement(result.placement, topo.num_contexts());
  const double mapped = placement_comm_cost(m, topo, result.placement);
  const double spread =
      placement_comm_cost(m, topo, os_spread_placement(topo, 1024));
  EXPECT_LT(mapped, 0.5 * spread);
}

}  // namespace
}  // namespace spcd::core
