// The graceful-degradation paths of the SPCD stack under deterministic
// perturbations: sharing-table saturation handled by aging/reset, injector
// deadline overruns handled by skipping a batch, and failed migrations
// handled by bounded retry with fallback to the old mapping. Each path is
// driven by a chaos::PerturbationEngine with the relevant probability at 1
// so the degradation fires deterministically.
#include <gtest/gtest.h>

#include "chaos/perturbation.hpp"
#include "core/fault_injector.hpp"
#include "core/runner.hpp"
#include "core/spcd_detector.hpp"
#include "sim/machine.hpp"
#include "workloads/npb.hpp"

namespace spcd::core {
namespace {

mem::FaultEvent fault(std::uint64_t vaddr, std::uint32_t tid,
                      util::Cycles time) {
  mem::FaultEvent e;
  e.vaddr = vaddr;
  e.vpn = vaddr >> 12;
  e.tid = tid;
  e.time = time;
  e.kind = mem::FaultKind::kFirstTouch;
  return e;
}

TEST(DegradationTest, DroppedFaultsNeverReachTheDetector) {
  chaos::PerturbationConfig chaos_config;
  chaos_config.drop_fault = 1.0;
  chaos::PerturbationEngine chaos(chaos_config, 1);
  SpcdDetector detector(SpcdConfig{}, 2, &chaos);
  for (util::Cycles i = 0; i < 10; ++i) {
    EXPECT_EQ(detector.on_fault(fault(0x1000, 0, 100 + i)), 0u);
  }
  EXPECT_EQ(detector.faults_seen(), 0u);
  EXPECT_EQ(detector.matrix().total(), 0u);
  EXPECT_EQ(chaos.counters().faults_dropped, 10u);
}

TEST(DegradationTest, DuplicatedFaultsDoubleRecordAndCost) {
  chaos::PerturbationConfig chaos_config;
  chaos_config.duplicate_fault = 1.0;
  chaos::PerturbationEngine chaos(chaos_config, 1);
  SpcdConfig config;
  SpcdDetector detector(config, 2, &chaos);
  EXPECT_EQ(detector.on_fault(fault(0x1000, 0, 100)),
            2 * config.fault_hook_cost);
  // The duplicated delivery of thread 1's fault observes thread 0 twice.
  detector.on_fault(fault(0x1000, 1, 200));
  EXPECT_EQ(detector.matrix().at(0, 1), 2u);
  EXPECT_EQ(chaos.counters().faults_duplicated, 2u);
}

TEST(DegradationTest, CollisionStormTriggersSaturationReset) {
  // Funnel every sharing-table access into a single bucket of a tiny
  // table: the collision/access ratio hits 100% and the saturation monitor
  // must age or reset the table instead of letting overwrites silently
  // degrade the matrix.
  chaos::PerturbationConfig chaos_config;
  chaos_config.forced_collision = 1.0;
  chaos_config.collision_buckets = 1;
  chaos::PerturbationEngine chaos(chaos_config, 1);

  SpcdConfig config;
  config.table.num_entries = 32;
  config.saturation_check_faults = 16;
  config.saturation_collision_ratio = 0.5;
  SpcdDetector detector(config, 4, &chaos);

  for (std::uint32_t i = 0; i < 64; ++i) {
    // Distinct regions from rotating threads: every access overwrites the
    // hot bucket (a collision), never finding its own region.
    detector.on_fault(fault(0x100000ULL + i * 0x1000, i % 4, 100 + i));
  }
  EXPECT_GT(detector.saturation_resets(), 0u);
  EXPECT_GT(chaos.counters().collisions_forced, 0u);
  // The detector keeps working after the reset.
  detector.on_fault(fault(0x900000, 0, 10'000));
  detector.on_fault(fault(0x900000, 1, 10'001));
  EXPECT_GT(detector.matrix().at(0, 1), 0u);
}

TEST(DegradationTest, HealthyRunsNeverSaturate) {
  SpcdConfig config;
  config.saturation_check_faults = 16;
  SpcdDetector detector(config, 4);  // default 256k-entry table, no chaos
  for (std::uint32_t i = 0; i < 256; ++i) {
    detector.on_fault(fault(0x100000ULL + i * 0x1000, i % 4, 100 + i));
  }
  EXPECT_EQ(detector.saturation_resets(), 0u);
}

/// Threads looping over private page ranges, long enough for several
/// injector periods (same shape as the fault-injector unit tests).
class PageLooper final : public sim::Workload {
 public:
  std::string name() const override { return "page-looper"; }
  std::uint32_t num_threads() const override { return 4; }
  std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t tid,
                                                  std::uint64_t) override {
    class P final : public sim::ThreadProgram {
     public:
      explicit P(std::uint32_t tid) : base_(0x100000ULL + tid * 0x100000ULL) {}
      sim::Op next() override {
        if (count_ >= 40'000) return sim::Op::finish();
        const std::uint64_t addr = base_ + (count_ % 200) * 4096;
        ++count_;
        return sim::Op::access(addr, false, 1, 300);
      }

     private:
      std::uint64_t base_;
      std::uint32_t count_ = 0;
    };
    return std::make_unique<P>(tid);
  }
};

TEST(DegradationTest, InjectorOverrunsSkipTheirBatch) {
  // Every wake-up overruns its deadline (the perturbed period is 2.5x the
  // nominal one, the deadline 1.5x): the injector must skip every batch
  // instead of injecting late bursts.
  chaos::PerturbationConfig chaos_config;
  chaos_config.overrun = 1.0;
  chaos::PerturbationEngine chaos(chaos_config, 9);

  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  PageLooper wl;
  sim::Engine engine(machine, as, wl, {0, 2, 4, 6});

  SpcdConfig config;
  config.injector_period = 100'000;
  FaultInjector injector(config, 42, &chaos);
  injector.install(engine);
  engine.run();

  EXPECT_GT(injector.wakeups(), 3u);
  EXPECT_EQ(injector.overrun_skips(), injector.wakeups());
  EXPECT_EQ(as.injected_faults(), 0u);
}

TEST(DegradationTest, JitteredWakeupsAreNotMistakenForOverruns) {
  chaos::PerturbationConfig chaos_config;
  chaos_config.wakeup_jitter = 0.45;  // max jitter < overrun_skip_factor - 1
  chaos::PerturbationEngine chaos(chaos_config, 9);

  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  PageLooper wl;
  sim::Engine engine(machine, as, wl, {0, 2, 4, 6});

  SpcdConfig config;
  config.injector_period = 100'000;
  FaultInjector injector(config, 42, &chaos);
  injector.install(engine);
  engine.run();

  EXPECT_GT(injector.wakeups(), 3u);
  EXPECT_EQ(injector.overrun_skips(), 0u);
  EXPECT_GT(as.injected_faults(), 0u);
}

RunMetrics run_sp(const chaos::PerturbationConfig& chaos_config) {
  RunnerConfig config;
  config.repetitions = 1;
  config.chaos = chaos_config;
  Runner runner(config);
  return runner.run_once("sp", workloads::nas_factory("sp", 0.3),
                         MappingPolicy::kSpcd, 0);
}

TEST(DegradationTest, FailedMigrationsRetryThenFallBackToOldMapping) {
  // Every sched_setaffinity fails: the kernel must retry with backoff,
  // exhaust its budget, give up, and keep running on the old mapping.
  chaos::PerturbationConfig chaos_config;
  chaos_config.migration_fail = 1.0;
  const RunMetrics m = run_sp(chaos_config);
  EXPECT_EQ(m.migration_events, 0u);
  EXPECT_GT(m.migration_retries, 0u);
  EXPECT_GT(m.migration_giveups, 0u);
  EXPECT_GT(m.exec_seconds, 0.0);

  // The unperturbed run does migrate, so the failure path above was real.
  const RunMetrics baseline = run_sp(chaos::PerturbationConfig{});
  EXPECT_GT(baseline.migration_events, 0u);
  EXPECT_EQ(baseline.migration_retries, 0u);
  EXPECT_EQ(baseline.migration_giveups, 0u);
}

TEST(DegradationTest, DelayedMigrationsStillLand) {
  chaos::PerturbationConfig chaos_config;
  chaos_config.migration_delay = 1.0;
  const RunMetrics m = run_sp(chaos_config);
  EXPECT_GT(m.migration_events, 0u);
  EXPECT_EQ(m.migration_giveups, 0u);
  EXPECT_GT(m.perturbations_injected, 0u);
}

TEST(DegradationTest, IntensityZeroMatchesTheUnperturbedRunExactly) {
  // The zero-cost-default guarantee: a chaos config at intensity 0 builds
  // no engine, draws no randomness, and reproduces the unperturbed run
  // bit for bit.
  const RunMetrics plain = run_sp(chaos::PerturbationConfig{});
  const RunMetrics zero = run_sp(chaos::PerturbationConfig::at_intensity(0.0));
  EXPECT_EQ(plain.exec_seconds, zero.exec_seconds);
  EXPECT_EQ(plain.instructions, zero.instructions);
  EXPECT_EQ(plain.l2_mpki, zero.l2_mpki);
  EXPECT_EQ(plain.l3_mpki, zero.l3_mpki);
  EXPECT_EQ(plain.c2c_transactions, zero.c2c_transactions);
  EXPECT_EQ(plain.invalidations, zero.invalidations);
  EXPECT_EQ(plain.dram_accesses, zero.dram_accesses);
  EXPECT_EQ(plain.package_joules, zero.package_joules);
  EXPECT_EQ(plain.dram_joules, zero.dram_joules);
  EXPECT_EQ(plain.detection_overhead, zero.detection_overhead);
  EXPECT_EQ(plain.mapping_overhead, zero.mapping_overhead);
  EXPECT_EQ(plain.migration_events, zero.migration_events);
  EXPECT_EQ(plain.minor_faults, zero.minor_faults);
  EXPECT_EQ(plain.injected_faults, zero.injected_faults);
  EXPECT_EQ(zero.saturation_resets, 0u);
  EXPECT_EQ(zero.migration_retries, 0u);
  EXPECT_EQ(zero.migration_giveups, 0u);
  EXPECT_EQ(zero.overrun_skips, 0u);
  EXPECT_EQ(zero.perturbations_injected, 0u);
}

}  // namespace
}  // namespace spcd::core
