#include "chaos/perturbation.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace spcd::chaos {
namespace {

TEST(PerturbationConfigTest, DefaultIsInertAndValid) {
  PerturbationConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(config.validate(), "");
}

TEST(PerturbationConfigTest, IntensityZeroIsInert) {
  const PerturbationConfig config = PerturbationConfig::at_intensity(0.0);
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(config.validate(), "");
}

TEST(PerturbationConfigTest, IntensityScalesTheStandardProfile) {
  const PerturbationConfig one = PerturbationConfig::at_intensity(1.0);
  EXPECT_TRUE(one.enabled());
  EXPECT_EQ(one.validate(), "");
  EXPECT_DOUBLE_EQ(one.drop_fault, 0.15);
  EXPECT_DOUBLE_EQ(one.duplicate_fault, 0.05);
  EXPECT_DOUBLE_EQ(one.forced_collision, 0.20);
  EXPECT_DOUBLE_EQ(one.wakeup_jitter, 0.25);
  EXPECT_DOUBLE_EQ(one.migration_fail, 0.35);

  // Probabilities saturate and the jitter stays below the overrun
  // detection threshold even at the extreme end of the scale.
  const PerturbationConfig four = PerturbationConfig::at_intensity(4.0);
  EXPECT_EQ(four.validate(), "");
  EXPECT_DOUBLE_EQ(four.drop_fault, 0.60);
  EXPECT_DOUBLE_EQ(four.migration_fail, 1.0);
  EXPECT_DOUBLE_EQ(four.wakeup_jitter, 0.45);

  // Out-of-range intensities clamp instead of producing invalid configs.
  const PerturbationConfig huge = PerturbationConfig::at_intensity(99.0);
  EXPECT_DOUBLE_EQ(huge.drop_fault, four.drop_fault);
  EXPECT_FALSE(PerturbationConfig::at_intensity(-3.0).enabled());
}

TEST(PerturbationConfigTest, ValidateRejectsBadValues) {
  PerturbationConfig config;
  config.drop_fault = 1.5;
  EXPECT_NE(config.validate(), "");

  config = {};
  config.wakeup_jitter = 0.6;  // would register as overruns
  EXPECT_NE(config.validate(), "");

  config = {};
  config.overrun_factor = 1.0;
  EXPECT_NE(config.validate(), "");

  config = {};
  config.collision_buckets = 0;
  EXPECT_NE(config.validate(), "");

  config = {};
  config.migration_delay = 0.5;
  config.migration_delay_cycles = 0;
  EXPECT_NE(config.validate(), "");

  config = {};
  config.migration_fail = -0.1;
  EXPECT_NE(config.validate(), "");
}

TEST(PerturbationEngineTest, InertConfigDrawsAndCountsNothing) {
  PerturbationEngine engine(PerturbationConfig{}, 42);
  std::uint64_t bucket = 17;
  util::Cycles delay = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine.drop_fault());
    EXPECT_FALSE(engine.duplicate_fault());
    EXPECT_FALSE(engine.redirect_bucket(1024, &bucket));
    EXPECT_EQ(engine.perturb_period(500'000), 500'000u);
    EXPECT_FALSE(engine.fail_migration());
    EXPECT_FALSE(engine.delay_migration(&delay));
  }
  EXPECT_EQ(bucket, 17u);  // never touched
  EXPECT_EQ(engine.counters().total(), 0u);
}

TEST(PerturbationEngineTest, SameSeedSameDrawSequence) {
  const PerturbationConfig config = PerturbationConfig::at_intensity(1.0);
  PerturbationEngine a(config, 123);
  PerturbationEngine b(config, 123);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_fault(), b.drop_fault());
    EXPECT_EQ(a.fail_migration(), b.fail_migration());
    EXPECT_EQ(a.perturb_period(500'000), b.perturb_period(500'000));
  }
  EXPECT_EQ(a.counters().total(), b.counters().total());
}

TEST(PerturbationEngineTest, HookFamiliesDrawFromIndependentStreams) {
  // The migration draw sequence must not depend on how many fault or
  // injector draws happened in between — each hook family owns a stream.
  const PerturbationConfig config = PerturbationConfig::at_intensity(1.0);
  PerturbationEngine interleaved(config, 7);
  PerturbationEngine isolated(config, 7);

  std::vector<bool> with_noise;
  for (int i = 0; i < 200; ++i) {
    (void)interleaved.drop_fault();
    (void)interleaved.duplicate_fault();
    (void)interleaved.perturb_period(500'000);
    with_noise.push_back(interleaved.fail_migration());
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(isolated.fail_migration(), with_noise[static_cast<std::size_t>(i)])
        << "draw " << i;
  }
}

TEST(PerturbationEngineTest, RedirectBucketLandsInTheHotRange) {
  PerturbationConfig config;
  config.forced_collision = 1.0;
  config.collision_buckets = 4;
  PerturbationEngine engine(config, 99);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t bucket = 500;
    EXPECT_TRUE(engine.redirect_bucket(1024, &bucket));
    EXPECT_LT(bucket, 4u);
  }
  EXPECT_EQ(engine.counters().collisions_forced, 100u);
}

TEST(PerturbationEngineTest, JitterStaysInsideTheConfiguredBand) {
  PerturbationConfig config;
  config.wakeup_jitter = 0.45;
  PerturbationEngine engine(config, 5);
  for (int i = 0; i < 200; ++i) {
    const util::Cycles period = engine.perturb_period(1'000'000);
    EXPECT_GE(period, 550'000u);
    EXPECT_LE(period, 1'450'000u);
  }
  EXPECT_EQ(engine.counters().wakeups_jittered, 200u);
}

TEST(PerturbationEngineTest, OverrunStretchesThePeriodByTheFactor) {
  PerturbationConfig config;
  config.overrun = 1.0;
  config.overrun_factor = 2.5;
  PerturbationEngine engine(config, 5);
  EXPECT_EQ(engine.perturb_period(1'000'000), 2'500'000u);
  EXPECT_EQ(engine.counters().overruns_injected, 1u);
}

TEST(PerturbationEngineTest, CountersTrackEveryInjection) {
  PerturbationConfig config;
  config.drop_fault = 1.0;
  config.duplicate_fault = 1.0;
  config.migration_fail = 1.0;
  config.migration_delay = 1.0;
  PerturbationEngine engine(config, 3);
  util::Cycles delay = 0;
  EXPECT_TRUE(engine.drop_fault());
  EXPECT_TRUE(engine.duplicate_fault());
  EXPECT_TRUE(engine.fail_migration());
  EXPECT_TRUE(engine.delay_migration(&delay));
  EXPECT_EQ(delay, config.migration_delay_cycles);
  EXPECT_EQ(engine.counters().faults_dropped, 1u);
  EXPECT_EQ(engine.counters().faults_duplicated, 1u);
  EXPECT_EQ(engine.counters().migrations_failed, 1u);
  EXPECT_EQ(engine.counters().migrations_delayed, 1u);
  EXPECT_EQ(engine.counters().total(), 4u);
}

TEST(PerturbationEnvTest, IntensityKnobScalesAndSingleKnobsOverride) {
  ::setenv("SPCD_CHAOS_INTENSITY", "1.0", 1);
  PerturbationConfig config = config_from_env();
  EXPECT_DOUBLE_EQ(config.drop_fault, 0.15);

  ::setenv("SPCD_CHAOS_DROP_FAULT", "0.9", 1);
  config = config_from_env();
  EXPECT_DOUBLE_EQ(config.drop_fault, 0.9);
  EXPECT_DOUBLE_EQ(config.duplicate_fault, 0.05);  // still from intensity

  ::unsetenv("SPCD_CHAOS_INTENSITY");
  ::unsetenv("SPCD_CHAOS_DROP_FAULT");
  EXPECT_FALSE(config_from_env().enabled());
}

}  // namespace
}  // namespace spcd::chaos
