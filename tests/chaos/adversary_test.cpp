// The adversary layer's contracts: config parsing/validation, the
// per-kind phantom shapes, and the determinism guarantee (the fabrication
// schedule is a pure function of seed + fault stream).
#include "chaos/adversary.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace spcd::chaos {
namespace {

constexpr unsigned kShift = 12;

std::vector<PhantomFault> fabricate_stream(AdversaryEngine& engine,
                                           std::uint32_t faults,
                                           util::Cycles step = 1000) {
  std::vector<PhantomFault> all;
  PhantomFault out[4];
  for (std::uint32_t i = 0; i < faults; ++i) {
    const std::uint32_t n = engine.fabricate(
        /*vaddr=*/0x1000ULL * (i + 1), /*tid=*/i % 4, /*now=*/step * i, out,
        4);
    for (std::uint32_t p = 0; p < n; ++p) all.push_back(out[p]);
  }
  return all;
}

TEST(AdversaryConfigTest, ParseAndToStringRoundTrip) {
  for (const AdversaryKind kind :
       {AdversaryKind::kNone, AdversaryKind::kCovert, AdversaryKind::kSkew,
        AdversaryKind::kPhaseFlip}) {
    AdversaryKind parsed = AdversaryKind::kNone;
    EXPECT_TRUE(parse_adversary_kind(to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  AdversaryKind parsed = AdversaryKind::kNone;
  EXPECT_FALSE(parse_adversary_kind("sidechannel", &parsed));
}

TEST(AdversaryConfigTest, EnabledNeedsKindAndIntensity) {
  AdversaryConfig c;
  EXPECT_FALSE(c.enabled());
  c.kind = AdversaryKind::kCovert;
  EXPECT_FALSE(c.enabled());  // intensity still 0
  c.intensity = 1.0;
  EXPECT_TRUE(c.enabled());
}

TEST(AdversaryConfigTest, ValidateRejectsBadValues) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kCovert;
  c.intensity = -0.1;
  EXPECT_FALSE(c.validate().empty());
  c.intensity = 5.0;
  EXPECT_FALSE(c.validate().empty());
  c.intensity = 1.0;
  EXPECT_TRUE(c.validate().empty());
  c.kind = AdversaryKind::kPhaseFlip;
  c.flip_period = 0;
  EXPECT_FALSE(c.validate().empty());
}

TEST(AdversaryConfigTest, FromEnvReadsKnobs) {
  ::setenv("SPCD_ADV_KIND", "skew", 1);
  ::setenv("SPCD_ADV_INTENSITY", "2.5", 1);
  ::setenv("SPCD_ADV_FLIP_PERIOD", "123456", 1);
  const AdversaryConfig c = adversary_from_env();
  ::unsetenv("SPCD_ADV_KIND");
  ::unsetenv("SPCD_ADV_INTENSITY");
  ::unsetenv("SPCD_ADV_FLIP_PERIOD");
  EXPECT_EQ(c.kind, AdversaryKind::kSkew);
  EXPECT_DOUBLE_EQ(c.intensity, 2.5);
  EXPECT_EQ(c.flip_period, 123456u);

  // Unset kind: disabled, zero default intensity.
  const AdversaryConfig off = adversary_from_env();
  EXPECT_EQ(off.kind, AdversaryKind::kNone);
  EXPECT_FALSE(off.enabled());
}

TEST(AdversaryConfigTest, FromEnvDefaultsIntensityWhenKindSet) {
  ::setenv("SPCD_ADV_KIND", "covert", 1);
  const AdversaryConfig c = adversary_from_env();
  ::unsetenv("SPCD_ADV_KIND");
  EXPECT_TRUE(c.enabled());
  EXPECT_DOUBLE_EQ(c.intensity, 1.0);
}

TEST(AdversaryEngineTest, SameSeedSameStream) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kCovert;
  c.intensity = 0.7;  // fractional: exercises the Bernoulli draw too
  AdversaryEngine a(c, 42, 8, kShift);
  AdversaryEngine b(c, 42, 8, kShift);
  const auto sa = fabricate_stream(a, 500);
  const auto sb = fabricate_stream(b, 500);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].vaddr, sb[i].vaddr) << i;
    EXPECT_EQ(sa[i].tid, sb[i].tid) << i;
  }
  EXPECT_GT(sa.size(), 0u);
  EXPECT_LT(sa.size(), 2u * 500u);  // fractional intensity skips some faults
}

TEST(AdversaryEngineTest, DisabledFabricatesNothing) {
  AdversaryConfig c;  // kind none
  AdversaryEngine e(c, 42, 8, kShift);
  EXPECT_TRUE(fabricate_stream(e, 100).empty());
  EXPECT_EQ(e.counters().phantom_faults, 0u);
}

TEST(AdversaryEngineTest, CovertEmitsDisjointColludingPairs) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kCovert;
  c.intensity = 1.0;
  AdversaryEngine e(c, 7, 16, kShift);
  const auto stream = fabricate_stream(e, 200);
  ASSERT_FALSE(stream.empty());
  ASSERT_EQ(stream.size() % 2, 0u);  // phantoms always come in pairs
  std::vector<std::uint8_t> seen(16, 0);
  for (std::size_t i = 0; i < stream.size(); i += 2) {
    // Both halves of a pair fault on the same dedicated phantom region,
    // far above any application address.
    EXPECT_EQ(stream[i].vaddr, stream[i + 1].vaddr);
    EXPECT_GE(stream[i].vaddr, 0x0ADF'0000ULL << kShift);
    EXPECT_NE(stream[i].tid, stream[i + 1].tid);
    seen[stream[i].tid] = seen[stream[i + 1].tid] = 1;
  }
  // 16 threads -> 4 colluding pairs: exactly 8 distinct tids participate.
  std::uint32_t participants = 0;
  for (const auto s : seen) participants += s;
  EXPECT_EQ(participants, 8u);
  EXPECT_EQ(e.counters().phantom_faults, stream.size());
}

TEST(AdversaryEngineTest, SkewPiggybacksAndFloodsFreshRegions) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kSkew;
  c.intensity = 1.0;
  AdversaryEngine e(c, 7, 8, kShift);
  PhantomFault out[4];
  std::uint64_t last_flood = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const std::uint64_t real_vaddr = 0xABC000 + 0x1000ULL * i;
    const std::uint32_t n = e.fabricate(real_vaddr, 0, 1000 * i, out, 4);
    ASSERT_EQ(n, 2u);
    // First phantom piggybacks on the honest region; both come from the
    // one attacker thread chosen at construction.
    EXPECT_EQ(out[0].vaddr, real_vaddr);
    EXPECT_EQ(out[0].tid, out[1].tid);
    // Second phantom is a never-reused flood region.
    EXPECT_GE(out[1].vaddr, 0x0CDF'0000ULL << kShift);
    EXPECT_GT(out[1].vaddr, last_flood);
    last_flood = out[1].vaddr;
  }
  EXPECT_EQ(e.counters().flood_regions, 50u);
}

TEST(AdversaryEngineTest, PhaseFlipOscillatesPartnerAcrossPhases) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kPhaseFlip;
  c.intensity = 1.0;
  c.flip_period = 10'000;
  AdversaryEngine e(c, 7, 8, kShift);
  PhantomFault out[4];
  // Even phase (now < flip_period): thread t pairs with t+1.
  ASSERT_EQ(e.fabricate(0x1000, 0, 0, out, 4), 3u);
  const std::uint32_t t0 = out[0].tid;
  EXPECT_EQ(out[1].tid, (t0 + 1) % 8);
  const std::uint64_t even_region = out[0].vaddr;
  // Jump to the next phase: same rotation slot comes around after 8 calls.
  for (int i = 0; i < 7; ++i) (void)e.fabricate(0x1000, 0, 0, out, 4);
  ASSERT_EQ(e.fabricate(0x1000, 0, /*now=*/15'000, out, 4), 3u);
  EXPECT_EQ(out[0].tid, t0);
  EXPECT_EQ(out[1].tid, (t0 + 2) % 8);   // odd phase: partner flips to t+2
  EXPECT_NE(out[0].vaddr, even_region);  // each phase has its own region
  EXPECT_EQ(e.counters().phase_flips, 1u);
}

TEST(AdversaryEngineTest, PhaseFlipNeedsThreeThreads) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kPhaseFlip;
  c.intensity = 1.0;
  AdversaryEngine e(c, 7, 2, kShift);
  PhantomFault out[4];
  EXPECT_EQ(e.fabricate(0x1000, 0, 0, out, 4), 0u);
}

TEST(AdversaryEngineTest, IntegerIntensityFabricatesEveryFault) {
  AdversaryConfig c;
  c.kind = AdversaryKind::kSkew;
  c.intensity = 2.0;  // two opportunities per fault, 2 phantoms each...
  AdversaryEngine e(c, 7, 8, kShift);
  PhantomFault out[4];
  // ...but the out buffer caps at 4, so exactly 4 phantoms per fault.
  EXPECT_EQ(e.fabricate(0x1000, 0, 0, out, 4), 4u);
  EXPECT_EQ(e.fabricate(0x2000, 1, 1000, out, 4), 4u);
}

}  // namespace
}  // namespace spcd::chaos
