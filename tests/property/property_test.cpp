// Property-based, parameterized sweeps across module configurations:
// invariants that must hold for *every* topology shape, cache geometry,
// sharing-table configuration, and workload mix — not just the defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "core/mapper.hpp"
#include "core/policy.hpp"
#include "mem/sharing_table.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace spcd {
namespace {

// ---------------------------------------------------------------------------
// Topology properties over many shapes.
// ---------------------------------------------------------------------------

class TopologyProperty
    : public ::testing::TestWithParam<arch::TopologySpec> {};

TEST_P(TopologyProperty, CoordinatesRoundTripAndPartition) {
  const arch::Topology topo(GetParam());
  std::set<std::pair<arch::CoreId, std::uint32_t>> seen;
  for (arch::ContextId ctx = 0; ctx < topo.num_contexts(); ++ctx) {
    const auto core = topo.core_of(ctx);
    const auto socket = topo.socket_of(ctx);
    const auto slot = topo.smt_slot_of(ctx);
    EXPECT_EQ(topo.socket_of_core(core), socket);
    EXPECT_LT(slot, GetParam().smt_per_core);
    EXPECT_TRUE(seen.insert({core, slot}).second);
    // The context appears in its core's sibling list.
    const auto sibs = topo.contexts_of_core(core);
    EXPECT_NE(std::find(sibs.begin(), sibs.end(), ctx), sibs.end());
  }
  EXPECT_EQ(seen.size(), topo.num_contexts());
}

TEST_P(TopologyProperty, ProximityIsConsistentWithCoordinates) {
  const arch::Topology topo(GetParam());
  for (arch::ContextId a = 0; a < topo.num_contexts(); ++a) {
    for (arch::ContextId b = 0; b < topo.num_contexts(); ++b) {
      const auto prox = topo.proximity(a, b);
      if (a == b) {
        EXPECT_EQ(prox, arch::Proximity::kSameContext);
      } else if (topo.core_of(a) == topo.core_of(b)) {
        EXPECT_EQ(prox, arch::Proximity::kSameCore);
      } else if (topo.socket_of(a) == topo.socket_of(b)) {
        EXPECT_EQ(prox, arch::Proximity::kSameSocket);
      } else {
        EXPECT_EQ(prox, arch::Proximity::kCrossSocket);
      }
    }
  }
}

TEST_P(TopologyProperty, ArityPathProductEqualsContexts) {
  const arch::Topology topo(GetParam());
  std::uint64_t product = 1;
  for (const auto a : topo.arity_path()) product *= a;
  EXPECT_EQ(product, topo.num_contexts());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyProperty,
    ::testing::Values(
        arch::TopologySpec{1, 1, 1}, arch::TopologySpec{1, 4, 1},
        arch::TopologySpec{1, 1, 4}, arch::TopologySpec{2, 8, 2},
        arch::TopologySpec{4, 4, 2}, arch::TopologySpec{8, 2, 1},
        arch::TopologySpec{2, 6, 4}, arch::TopologySpec{3, 5, 2}));

// ---------------------------------------------------------------------------
// Cache properties over geometries: an LRU set-associative cache never
// exceeds capacity, and a working set that fits is never evicted.
// ---------------------------------------------------------------------------

class CacheProperty : public ::testing::TestWithParam<arch::CacheGeometry> {};

TEST_P(CacheProperty, ResidencyNeverExceedsCapacity) {
  sim::Cache cache(GetParam());
  util::Xoshiro256 rng(99);
  std::set<std::uint64_t> resident;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t line = rng.below(4096);
    if (!cache.probe(line)) {
      const auto r = cache.insert(line);
      if (r.evicted) {
        EXPECT_TRUE(resident.erase(r.victim)) << "evicted non-resident line";
      }
      resident.insert(line);
    } else {
      EXPECT_TRUE(resident.count(line));
    }
    ASSERT_LE(resident.size(), GetParam().num_lines());
  }
  // Shadow model agrees with the cache on every resident line.
  for (const auto line : resident) {
    EXPECT_TRUE(cache.contains(line));
  }
}

TEST_P(CacheProperty, FittingWorkingSetStaysResident) {
  sim::Cache cache(GetParam());
  // One line per set fits trivially regardless of associativity.
  const std::uint64_t sets = cache.num_sets();
  for (std::uint64_t s = 0; s < sets; ++s) cache.insert(s);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(cache.probe(rng.below(sets)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(
        arch::CacheGeometry{256, 1, 64},        // direct mapped, 4 lines
        arch::CacheGeometry{512, 2, 64},        // 4 sets x 2
        arch::CacheGeometry{1024, 16, 64},      // fully associative
        arch::CacheGeometry{32 * 1024, 8, 64},  // L1-like
        arch::CacheGeometry{256 * 1024, 8, 64}));

// ---------------------------------------------------------------------------
// Sharing-table properties over configurations.
// ---------------------------------------------------------------------------

struct SharingCase {
  std::uint64_t entries;
  unsigned shift;
  std::uint32_t max_sharers;
  mem::CollisionPolicy policy;
};

class SharingTableProperty : public ::testing::TestWithParam<SharingCase> {};

TEST_P(SharingTableProperty, NeverReportsSelfOrOutOfWindowPartners) {
  const auto& param = GetParam();
  mem::SharingTableConfig config;
  config.num_entries = param.entries;
  config.granularity_shift = param.shift;
  config.max_sharers = param.max_sharers;
  config.collision_policy = param.policy;
  config.time_window = 10'000;
  mem::SharingTable table(config);

  util::Xoshiro256 rng(42);
  std::uint64_t now = 0;
  for (int i = 0; i < 30000; ++i) {
    const auto tid = static_cast<std::uint32_t>(rng.below(16));
    const std::uint64_t vaddr = rng.below(64) << param.shift;
    now += rng.below(200);
    const auto event = table.record_access(vaddr, tid, now);
    ASSERT_LE(event.partner_count, 8u);
    for (std::uint32_t k = 0; k < event.partner_count; ++k) {
      EXPECT_NE(event.partners[k], tid);   // never self
      EXPECT_LT(event.partners[k], 16u);   // a thread that actually exists
    }
  }
}

TEST_P(SharingTableProperty, DeterministicReplay) {
  const auto& param = GetParam();
  mem::SharingTableConfig config;
  config.num_entries = param.entries;
  config.granularity_shift = param.shift;
  config.max_sharers = param.max_sharers;
  config.collision_policy = param.policy;

  auto run = [&config] {
    mem::SharingTable table(config);
    util::Xoshiro256 rng(7);
    std::uint64_t partner_hash = 0;
    for (int i = 0; i < 20000; ++i) {
      const auto event = table.record_access(
          rng.below(1000) << 12, static_cast<std::uint32_t>(rng.below(8)),
          static_cast<std::uint64_t>(i));
      for (std::uint32_t k = 0; k < event.partner_count; ++k) {
        partner_hash = partner_hash * 31 + event.partners[k] + 1;
      }
    }
    return std::make_pair(partner_hash, table.collisions());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SharingTableProperty,
    ::testing::Values(
        SharingCase{16, 12, 8, mem::CollisionPolicy::kOverwrite},
        SharingCase{16, 12, 8, mem::CollisionPolicy::kChain},
        SharingCase{4096, 6, 2, mem::CollisionPolicy::kOverwrite},
        SharingCase{4096, 16, 4, mem::CollisionPolicy::kOverwrite},
        SharingCase{256000, 12, 8, mem::CollisionPolicy::kOverwrite}));

// ---------------------------------------------------------------------------
// Mapper properties over random communication matrices and topologies:
// the computed placement is always a valid injection, and never worse than
// the communication-oblivious spread.
// ---------------------------------------------------------------------------

struct MapperCase {
  arch::TopologySpec topo;
  std::uint64_t seed;
  double density;
};

class MapperProperty : public ::testing::TestWithParam<MapperCase> {};

TEST_P(MapperProperty, MappedCostNeverWorseThanSpread) {
  const auto& param = GetParam();
  const arch::Topology topo(param.topo);
  const auto n = topo.num_contexts();
  util::Xoshiro256 rng(param.seed);
  core::CommMatrix matrix(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < param.density) {
        matrix.add(i, j, 1 + rng.below(1000));
      }
    }
  }
  const auto mapped = core::compute_mapping(matrix, topo).placement;
  std::set<arch::ContextId> used(mapped.begin(), mapped.end());
  ASSERT_EQ(used.size(), mapped.size());

  const double mapped_cost =
      core::placement_comm_cost(matrix, topo, mapped);
  const double spread_cost = core::placement_comm_cost(
      matrix, topo, core::os_spread_placement(topo, n));
  EXPECT_LE(mapped_cost, spread_cost * 1.0001)
      << "mapping must not be worse than the oblivious spread";
}

TEST_P(MapperProperty, AlignedRemapOfSameMatrixIsIdempotent) {
  const auto& param = GetParam();
  const arch::Topology topo(param.topo);
  const auto n = topo.num_contexts();
  util::Xoshiro256 rng(param.seed ^ 0x5a5a);
  core::CommMatrix matrix(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < param.density) {
        matrix.add(i, j, 1 + rng.below(1000));
      }
    }
  }
  const auto first = core::compute_mapping(matrix, topo).placement;
  const auto second = core::compute_mapping(matrix, topo, first).placement;
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Matrices, MapperProperty,
    ::testing::Values(
        MapperCase{{2, 8, 2}, 1, 0.1}, MapperCase{{2, 8, 2}, 2, 0.5},
        MapperCase{{2, 8, 2}, 3, 1.0}, MapperCase{{2, 2, 2}, 4, 0.5},
        MapperCase{{4, 4, 2}, 5, 0.3}, MapperCase{{1, 8, 2}, 6, 0.7},
        MapperCase{{2, 4, 1}, 7, 0.4}, MapperCase{{2, 8, 2}, 8, 0.02}));

// ---------------------------------------------------------------------------
// Engine conservation properties over machine specs and random workloads:
// counter identities hold and runs are deterministic.
// ---------------------------------------------------------------------------

class RandomWorkload final : public sim::Workload {
 public:
  RandomWorkload(std::uint32_t threads, std::uint64_t seed)
      : threads_(threads), seed_(seed) {}
  std::string name() const override { return "random"; }
  std::uint32_t num_threads() const override { return threads_; }
  std::unique_ptr<sim::ThreadProgram> make_thread(std::uint32_t tid,
                                                  std::uint64_t) override {
    class P final : public sim::ThreadProgram {
     public:
      P(std::uint64_t seed) : rng_(seed) {}
      sim::Op next() override {
        if (n_ >= 3000) return sim::Op::finish();
        ++n_;
        if (n_ % 500 == 0) return sim::Op::barrier();
        if (rng_.chance(0.1)) return sim::Op::compute(3, 100);
        return sim::Op::access(0x10000 + rng_.below(1 << 18),
                               rng_.chance(0.3), 2, 30);
      }

     private:
      util::Xoshiro256 rng_;
      std::uint32_t n_ = 0;
    };
    return std::make_unique<P>(util::derive_seed(seed_, tid));
  }

 private:
  std::uint32_t threads_;
  std::uint64_t seed_;
};

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, CounterIdentitiesAndHierarchyInvariants) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  RandomWorkload wl(8, GetParam());
  sim::Engine engine(machine, as, wl,
                     core::os_spread_placement(machine.topology(), 8));
  engine.run();

  const auto& c = engine.counters();
  EXPECT_EQ(c.l1_hits + c.l1_misses, c.accesses());
  EXPECT_EQ(c.l2_hits + c.l2_misses, c.l1_misses);
  EXPECT_EQ(c.l3_hits + c.l3_misses, c.l2_misses);
  EXPECT_EQ(c.c2c_cross_socket + c.dram_total(), c.l3_misses);
  EXPECT_EQ(c.tlb_hits + c.tlb_misses, c.accesses());
  EXPECT_GE(c.tlb_misses, c.minor_faults + c.injected_faults);
  EXPECT_EQ(machine.hierarchy().check_invariants(), 0u);
  EXPECT_GE(engine.finish_time(), 1u);
}

TEST_P(EngineProperty, MigrationMidRunPreservesInvariants) {
  sim::Machine machine(arch::tiny_test_machine());
  auto as = machine.make_address_space();
  RandomWorkload wl(8, GetParam());
  sim::Engine engine(machine, as, wl,
                     core::os_spread_placement(machine.topology(), 8));
  util::Xoshiro256 rng(GetParam());
  std::function<void(sim::Engine&)> shuffle = [&](sim::Engine& e) {
    e.migrate(static_cast<sim::ThreadId>(rng.below(8)),
              static_cast<arch::ContextId>(rng.below(8)));
    if (e.active_threads() > 0) e.schedule(e.now() + 20000, shuffle);
  };
  engine.schedule(20000, shuffle);
  // Placement must stay injective among *running* threads through an
  // arbitrary migration storm (finished threads keep historical entries).
  std::function<void(sim::Engine&)> check = [&](sim::Engine& e) {
    std::set<arch::ContextId> used;
    for (sim::ThreadId t = 0; t < e.num_threads(); ++t) {
      if (e.thread_finished(t)) continue;
      EXPECT_TRUE(used.insert(e.placement()[t]).second)
          << "duplicate context at cycle " << e.now();
      EXPECT_EQ(e.thread_on(e.placement()[t]), t);
    }
    if (e.active_threads() > 0) e.schedule(e.now() + 15000, check);
  };
  engine.schedule(15000, check);
  engine.run();

  EXPECT_EQ(machine.hierarchy().check_invariants(), 0u);
  EXPECT_FALSE(engine.timed_out());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Journal properties over random record sets and random corruption: the
// loader must never crash, must recover exactly an intact prefix of what
// was written, and rotation must be byte-stable.
// ---------------------------------------------------------------------------

class JournalProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string scratch(const char* tag) {
    cleanup_.push_back("journal_prop_" + std::string(tag) + "_" +
                       std::to_string(GetParam()));
    return cleanup_.back();
  }
  /// Random printable-ish records, a few containing newlines and frame
  /// look-alikes to stress the length-delimited framing.
  std::vector<std::string> random_records(util::Xoshiro256& rng) {
    std::vector<std::string> records(2 + rng.below(14));
    for (auto& r : records) {
      const std::uint64_t len = rng.below(120);
      r.reserve(len);
      for (std::uint64_t i = 0; i < len; ++i) {
        r.push_back(static_cast<char>(' ' + rng.below(95)));
      }
      if (rng.chance(0.2)) r += "\n#rec 3 0000000000000000\nxyz";
    }
    return records;
  }
  static std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::string out;
    if (f == nullptr) return out;
    char buf[4096];
    for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
      out.append(buf, n);
    }
    std::fclose(f);
    return out;
  }
  static void write_file(const std::string& path,
                         const std::string& contents) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
  }
  /// True when `got` is a prefix of `want`.
  static bool is_prefix(const std::vector<std::string>& got,
                        const std::vector<std::string>& want) {
    if (got.size() > want.size()) return false;
    return std::equal(got.begin(), got.end(), want.begin());
  }
  std::vector<std::string> cleanup_;
};

TEST_P(JournalProperty, RandomTruncationRecoversAnIntactPrefix) {
  util::Xoshiro256 rng(GetParam());
  const std::string path = scratch("trunc");
  const auto records = random_records(rng);
  {
    util::Journal j = util::Journal::create(path, "prop-meta");
    for (const auto& r : records) ASSERT_TRUE(j.append(r));
  }
  const std::string full = read_file(path);
  ASSERT_FALSE(full.empty());
  // Full file: everything comes back.
  const auto intact = util::Journal::load(path);
  ASSERT_TRUE(intact.valid);
  EXPECT_EQ(intact.records, records);
  EXPECT_FALSE(intact.torn_tail);
  // 64 random truncation points (plus the empty file): never crash,
  // always an intact prefix.
  for (int i = 0; i < 64; ++i) {
    const std::size_t keep = rng.below(full.size());
    write_file(path, full.substr(0, keep));
    const auto r = util::Journal::load(path);
    EXPECT_TRUE(is_prefix(r.records, records)) << "cut at " << keep;
  }
}

TEST_P(JournalProperty, RandomBitFlipsRecoverAnIntactPrefix) {
  util::Xoshiro256 rng(GetParam());
  const std::string path = scratch("flip");
  const auto records = random_records(rng);
  {
    util::Journal j = util::Journal::create(path, "prop-meta");
    for (const auto& r : records) ASSERT_TRUE(j.append(r));
  }
  const std::string full = read_file(path);
  for (int i = 0; i < 64; ++i) {
    std::string mutated = full;
    // Flip one random bit (occasionally several) anywhere in the file.
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(mutated.size());
      mutated[at] = static_cast<char>(
          mutated[at] ^ static_cast<char>(1u << rng.below(8)));
    }
    write_file(path, mutated);
    const auto r = util::Journal::load(path);  // must never throw
    // A flip in the header invalidates the whole journal; any other flip
    // truncates recovery to the records before the damage. Either way,
    // every recovered record is one we wrote, in order.
    EXPECT_TRUE(is_prefix(r.records, records)) << "iteration " << i;
  }
}

TEST_P(JournalProperty, RotationIsByteStableAndLossless) {
  util::Xoshiro256 rng(GetParam());
  const std::string path = scratch("rotate");
  const auto records = random_records(rng);
  { util::Journal::rotate(path, "prop-meta", records); }
  const std::string first = read_file(path);
  const auto loaded = util::Journal::load(path);
  ASSERT_TRUE(loaded.valid);
  EXPECT_EQ(loaded.meta, "prop-meta");
  EXPECT_EQ(loaded.records, records);
  EXPECT_FALSE(loaded.torn_tail);
  // Rotating the loaded records reproduces the file byte for byte: the
  // serialization has one canonical form.
  { util::Journal::rotate(path, loaded.meta, loaded.records); }
  EXPECT_EQ(read_file(path), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace spcd
