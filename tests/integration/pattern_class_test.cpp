// Integration sweep over all ten NAS-like benchmarks (scaled down): the
// oracle communication matrix of each benchmark must match its Table II
// pattern classification — heterogeneous patterns concentrate
// communication on a few partners per thread, homogeneous ones spread it.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

/// Concentration metric: fraction of a thread's communication that goes to
/// its top-2 partners, averaged over threads with any communication.
double concentration(const core::CommMatrix& m) {
  double sum = 0.0;
  std::uint32_t counted = 0;
  for (std::uint32_t t = 0; t < m.size(); ++t) {
    std::uint64_t total = 0, top1 = 0, top2 = 0;
    for (std::uint32_t u = 0; u < m.size(); ++u) {
      if (u == t) continue;
      const std::uint64_t v = m.at(t, u);
      total += v;
      if (v >= top1) {
        top2 = top1;
        top1 = v;
      } else if (v > top2) {
        top2 = v;
      }
    }
    if (total == 0) continue;
    sum += static_cast<double>(top1 + top2) / static_cast<double>(total);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

class PatternClassTest
    : public ::testing::TestWithParam<workloads::BenchmarkInfo> {};

TEST_P(PatternClassTest, OracleMatrixMatchesClassification) {
  const auto& info = GetParam();
  core::RunnerConfig config;
  config.repetitions = 1;
  core::Runner runner(config);
  const auto factory = workloads::nas_factory(info.name, /*scale=*/0.15);
  (void)runner.oracle_placement(info.name, factory);
  const core::CommMatrix* matrix = runner.oracle_matrix(info.name);
  ASSERT_NE(matrix, nullptr);

  if (info.name == "ep") {
    // EP: almost no communication at all (the paper: "the total amount of
    // communication is very low").
    EXPECT_LT(matrix->total(), 200000u);
    return;
  }
  ASSERT_GT(matrix->total(), 0u) << "no communication detected";
  const double c = concentration(*matrix);
  // A uniform all-to-all pattern has top-2 share ~2/31 ~ 0.065. Strongly
  // banded benchmarks concentrate most communication on their two
  // neighbors; DC (wide hot-window overlap) and MG (bands at several
  // power-of-two strides) are heterogeneous but deliberately less
  // concentrated — the paper calls DC "slightly heterogeneous".
  const bool mild = info.name == "dc" || info.name == "mg";
  if (info.pattern != workloads::PatternClass::kHeterogeneous) {
    EXPECT_LT(c, 0.30) << info.name
                       << ": homogeneous pattern should spread "
                          "communication (got " << c << ")";
  } else if (mild) {
    EXPECT_GT(c, 0.12) << info.name << ": got " << c;
    EXPECT_LT(c, 0.60) << info.name << ": got " << c;
  } else {
    EXPECT_GT(c, 0.45) << info.name
                       << ": strongly banded pattern should concentrate "
                          "communication on few partners (got " << c << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PatternClassTest,
    ::testing::ValuesIn(workloads::nas_benchmarks()),
    [](const ::testing::TestParamInfo<workloads::BenchmarkInfo>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace spcd
