// The determinism contract of the adversarial layer: phantom faults are
// fabricated inside the detector's serial drain loop from cell-seeded
// streams, and every defense decision keys off detector/kernel state that
// is itself deterministic — so an attacked, hardened run is bit-identical
// for any SPCD_JOBS x SPCD_ENGINE_SHARDS combination, down to each new
// defense counter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/adversary.hpp"
#include "core/runner.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

std::vector<core::RunMetrics> run_grid(const char* jobs, const char* shards,
                                       chaos::AdversaryKind kind) {
  ::setenv("SPCD_JOBS", jobs, 1);
  ::setenv("SPCD_ENGINE_SHARDS", shards, 1);
  core::RunnerConfig config;
  config.repetitions = 3;
  config.jobs = 0;           // resolve through SPCD_JOBS
  config.engine.shards = 0;  // resolve through SPCD_ENGINE_SHARDS
  config.adversary.kind = kind;
  config.adversary.intensity = 1.0;
  config.spcd.hardening.enabled = true;
  config.spcd.hardening.anomaly_window_faults = 128;
  core::Runner runner(config);
  auto runs = runner.run_policy("cg", workloads::nas_factory("cg", 0.15),
                                core::MappingPolicy::kSpcd);
  ::unsetenv("SPCD_JOBS");
  ::unsetenv("SPCD_ENGINE_SHARDS");
  return runs;
}

void expect_identical(const std::vector<core::RunMetrics>& lhs,
                      const std::vector<core::RunMetrics>& rhs) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t rep = 0; rep < lhs.size(); ++rep) {
    const core::RunMetrics& a = lhs[rep];
    const core::RunMetrics& b = rhs[rep];
    const std::string where = "rep " + std::to_string(rep);
    EXPECT_EQ(a.exec_seconds, b.exec_seconds) << where;
    EXPECT_EQ(a.instructions, b.instructions) << where;
    EXPECT_EQ(a.c2c_transactions, b.c2c_transactions) << where;
    EXPECT_EQ(a.dram_accesses, b.dram_accesses) << where;
    EXPECT_EQ(a.minor_faults, b.minor_faults) << where;
    EXPECT_EQ(a.injected_faults, b.injected_faults) << where;
    EXPECT_EQ(a.migration_events, b.migration_events) << where;
    EXPECT_EQ(a.saturation_resets, b.saturation_resets) << where;
    // The defense counters themselves must not wobble either.
    EXPECT_EQ(a.anomalies_flagged, b.anomalies_flagged) << where;
    EXPECT_EQ(a.admissions_refused, b.admissions_refused) << where;
    EXPECT_EQ(a.remaps_deferred, b.remaps_deferred) << where;
    EXPECT_EQ(a.remaps_rolled_back, b.remaps_rolled_back) << where;
  }
}

TEST(AdversarialDeterminismTest, SkewAttackIsByteIdenticalAcrossJobsAndShards) {
  const auto base = run_grid("1", "1", chaos::AdversaryKind::kSkew);
  expect_identical(base, run_grid("4", "1", chaos::AdversaryKind::kSkew));
  expect_identical(base, run_grid("1", "4", chaos::AdversaryKind::kSkew));
  expect_identical(base, run_grid("4", "4", chaos::AdversaryKind::kSkew));

  // Guard against vacuous success: the attack and the defenses both fired.
  std::uint64_t phantom_evidence = 0;
  for (const auto& m : base) {
    phantom_evidence +=
        m.anomalies_flagged + m.admissions_refused + m.remaps_deferred;
  }
  EXPECT_GT(phantom_evidence, 0u);
}

TEST(AdversarialDeterminismTest, PhaseFlipAttackIsByteIdenticalAcrossGrid) {
  const auto base = run_grid("1", "1", chaos::AdversaryKind::kPhaseFlip);
  expect_identical(base,
                   run_grid("4", "4", chaos::AdversaryKind::kPhaseFlip));
}

}  // namespace
}  // namespace spcd
