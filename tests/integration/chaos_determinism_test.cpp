// The determinism contract of the perturbation layer: chaos streams are
// seeded from the experiment's cell seed, so a perturbed run is
// bit-identical for any SPCD_JOBS worker count — the same guarantee the
// pipeline gives for unperturbed runs (pipeline_determinism_test), extended
// to every degradation counter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "chaos/perturbation.hpp"
#include "core/runner.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

std::vector<core::RunMetrics> run_grid(const char* jobs) {
  ::setenv("SPCD_JOBS", jobs, 1);
  core::RunnerConfig config;
  config.repetitions = 4;
  config.jobs = 0;  // resolve through the SPCD_JOBS environment knob
  config.chaos = chaos::PerturbationConfig::at_intensity(0.8);
  core::Runner runner(config);
  auto runs = runner.run_policy("cg", workloads::nas_factory("cg", 0.15),
                                core::MappingPolicy::kSpcd);
  ::unsetenv("SPCD_JOBS");
  return runs;
}

TEST(ChaosDeterminismTest, PerturbedRunsAreByteIdenticalAcrossJobCounts) {
  const std::vector<core::RunMetrics> serial = run_grid("1");
  const std::vector<core::RunMetrics> parallel = run_grid("4");

  ASSERT_EQ(serial.size(), parallel.size());
  std::uint64_t total_perturbations = 0;
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    const core::RunMetrics& a = serial[rep];
    const core::RunMetrics& b = parallel[rep];
    const std::string where = "rep " + std::to_string(rep);
    // Exact equality on purpose: the chaos streams must not perturb a
    // single bit across scheduling orders.
    EXPECT_EQ(a.exec_seconds, b.exec_seconds) << where;
    EXPECT_EQ(a.instructions, b.instructions) << where;
    EXPECT_EQ(a.l2_mpki, b.l2_mpki) << where;
    EXPECT_EQ(a.l3_mpki, b.l3_mpki) << where;
    EXPECT_EQ(a.c2c_transactions, b.c2c_transactions) << where;
    EXPECT_EQ(a.invalidations, b.invalidations) << where;
    EXPECT_EQ(a.dram_accesses, b.dram_accesses) << where;
    EXPECT_EQ(a.package_joules, b.package_joules) << where;
    EXPECT_EQ(a.dram_joules, b.dram_joules) << where;
    EXPECT_EQ(a.detection_overhead, b.detection_overhead) << where;
    EXPECT_EQ(a.mapping_overhead, b.mapping_overhead) << where;
    EXPECT_EQ(a.migration_events, b.migration_events) << where;
    EXPECT_EQ(a.minor_faults, b.minor_faults) << where;
    EXPECT_EQ(a.injected_faults, b.injected_faults) << where;
    EXPECT_EQ(a.saturation_resets, b.saturation_resets) << where;
    EXPECT_EQ(a.migration_retries, b.migration_retries) << where;
    EXPECT_EQ(a.migration_giveups, b.migration_giveups) << where;
    EXPECT_EQ(a.overrun_skips, b.overrun_skips) << where;
    EXPECT_EQ(a.perturbations_injected, b.perturbations_injected) << where;
    total_perturbations += a.perturbations_injected;
  }
  // Guard against vacuous success: the chaos layer actually perturbed.
  EXPECT_GT(total_perturbations, 0u);
}

}  // namespace
}  // namespace spcd
