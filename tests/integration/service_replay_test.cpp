// Crash-consistency contract of the spcdd daemon, end to end in a real
// subprocess: SIGKILL mid-session (tenants registered, batches acked,
// decisions journaled, nobody said bye) must leave a journal that
// `spcdd --replay` accepts with zero digest mismatches, and that rebuilds
// the identical decision stream and metrics snapshot on every replay.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "svc/driver.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/transport.hpp"
#include "util/journal.hpp"

namespace spcd {
namespace {

std::string tmp_path(const char* name) { return testing::TempDir() + name; }

/// Launch `spcdd --serve` on the given socket/journal; stdout to /dev/null.
pid_t spawn_daemon(const std::string& socket, const std::string& journal) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int null_fd = ::open("/dev/null", O_WRONLY);
  if (null_fd >= 0) {
    ::dup2(null_fd, STDOUT_FILENO);
    ::close(null_fd);
  }
  const char* argv[] = {SPCDD_BINARY,    "--serve",  "--socket",
                        socket.c_str(),  "--journal", journal.c_str(),
                        "--interval",    "512",       nullptr};
  ::execv(SPCDD_BINARY, const_cast<char* const*>(argv));
  std::perror("execv spcdd");
  std::_Exit(127);
}

/// Run `spcdd --replay` to completion and return its exit code.
int run_replay_cli(const std::string& journal) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    const char* argv[] = {SPCDD_BINARY, "--replay", journal.c_str(),
                          nullptr};
    ::execv(SPCDD_BINARY, const_cast<char* const*>(argv));
    std::perror("execv spcdd");
    std::_Exit(127);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ServiceReplayTest, SigkilledSessionReplaysByteIdentically) {
  const std::string socket = tmp_path("service_replay.sock");
  const std::string journal = tmp_path("service_replay.journal");
  std::remove(socket.c_str());
  std::remove(journal.c_str());

  const pid_t daemon = spawn_daemon(socket, journal);
  ASSERT_GT(daemon, 0);

  // Three tenants register and push acked batches; enough events cross
  // several 512-event arbitration boundaries, so the journal carries
  // decisions. Nobody says bye — the SIGKILL lands mid-session.
  svc::DriverConfig driver;
  driver.threads_per_tenant = 4;
  driver.events_per_batch = 256;
  std::vector<std::unique_ptr<svc::Transport>> clients;
  std::uint64_t last_acked_seq = 0;
  for (std::uint32_t t = 0; t < 3; ++t) {
    std::string error;
    auto client = svc::connect_unix(socket, 10'000, &error);
    ASSERT_NE(client, nullptr) << error;
    ASSERT_TRUE(client->send(
        svc::encode_hello("crash-" + std::to_string(t), 4)));
    std::string payload;
    ASSERT_EQ(client->recv(&payload, 5'000),
              svc::Transport::RecvStatus::kFrame);
    const auto welcome = svc::parse_message(payload);
    ASSERT_TRUE(welcome.has_value());
    ASSERT_EQ(welcome->type, svc::MessageType::kWelcome);
    for (std::uint32_t batch = 0; batch < 4; ++batch) {
      ASSERT_TRUE(client->send(
          svc::encode_fault_batch(batch + 1, svc::scripted_batch(driver, t, batch))));
      ASSERT_EQ(client->recv(&payload, 5'000),
                svc::Transport::RecvStatus::kFrame);
      const auto ack = svc::parse_message(payload);
      ASSERT_TRUE(ack.has_value());
      ASSERT_EQ(ack->type, svc::MessageType::kBatchAck);
      last_acked_seq = ack->seq;
    }
    clients.push_back(std::move(client));
  }
  ASSERT_GT(last_acked_seq, 0u);

  // SIGKILL: no drain, no final decision, no flush beyond the per-commit
  // fsyncs the ack contract already required.
  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  for (auto& client : clients) client->close();

  // Replay #1: every acked commit is present and no decision diverges.
  const svc::SpcdService::ReplayResult first =
      svc::SpcdService::replay(journal);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_NE(first.service, nullptr);
  EXPECT_EQ(first.digest_mismatches, 0u);
  EXPECT_GT(first.decisions_checked, 0u);
  // Every journaled record came back: 3 registers + 12 batches, plus one
  // record per journaled decision.
  EXPECT_EQ(first.records_applied, 3u + 12u + first.decisions_checked);
  EXPECT_GE(first.records_applied, last_acked_seq);
  EXPECT_EQ(first.service->registered_tenants(), 3u);
  EXPECT_EQ(first.service->total_events(), 3u * 4u * 256u);

  // Replay #2 must reproduce replay #1 byte for byte: decisions text and
  // the metrics snapshot are pure functions of the journal.
  const svc::SpcdService::ReplayResult second =
      svc::SpcdService::replay(journal);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.service->decisions_text(),
            first.service->decisions_text());
  EXPECT_EQ(second.service->metrics_json(), first.service->metrics_json());

  // The CLI agrees: `spcdd --replay` exits 0 on this journal.
  EXPECT_EQ(run_replay_cli(journal), 0);

  std::remove(socket.c_str());
  std::remove(journal.c_str());
}

TEST(ServiceReplayTest, ReplayCliRejectsCorruptedDecisionDigest) {
  const std::string socket = tmp_path("service_replay_bad.sock");
  const std::string journal = tmp_path("service_replay_bad.journal");
  std::remove(socket.c_str());
  std::remove(journal.c_str());

  const pid_t daemon = spawn_daemon(socket, journal);
  ASSERT_GT(daemon, 0);
  {
    std::string error;
    auto client = svc::connect_unix(socket, 10'000, &error);
    ASSERT_NE(client, nullptr) << error;
    svc::DriverConfig driver;
    driver.threads_per_tenant = 4;
    driver.events_per_batch = 256;
    ASSERT_TRUE(client->send(svc::encode_hello("corrupt", 4)));
    std::string payload;
    ASSERT_EQ(client->recv(&payload, 5'000),
              svc::Transport::RecvStatus::kFrame);
    for (std::uint32_t batch = 0; batch < 4; ++batch) {
      ASSERT_TRUE(client->send(
          svc::encode_fault_batch(batch + 1, svc::scripted_batch(driver, 0, batch))));
      ASSERT_EQ(client->recv(&payload, 5'000),
                svc::Transport::RecvStatus::kFrame);
    }
    client->close();
  }
  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);

  // Flip one hex digit inside a journaled decision digest, rewriting the
  // journal through rotate() so the record's CRC frame stays valid (a raw
  // byte flip would just read as a torn tail). The replay must detect the
  // semantic divergence and the CLI must exit nonzero.
  {
    util::Journal::LoadResult loaded = util::Journal::load(journal);
    ASSERT_TRUE(loaded.valid);
    bool corrupted = false;
    for (std::string& record : loaded.records) {
      if (record.rfind("arb ", 0) != 0) continue;
      char& digit = record.back();
      digit = digit == '0' ? '1' : '0';
      corrupted = true;
      break;
    }
    ASSERT_TRUE(corrupted) << "no decision journaled";
    util::Journal rotated =
        util::Journal::rotate(journal, loaded.meta, loaded.records);
    ASSERT_TRUE(rotated.ok());
  }
  const svc::SpcdService::ReplayResult replayed =
      svc::SpcdService::replay(journal);
  EXPECT_FALSE(replayed.ok);
  EXPECT_NE(run_replay_cli(journal), 0);

  std::remove(socket.c_str());
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace spcd
