// Worker-level chaos composed with the parallel engine: a supervised sweep
// whose workers crash or hang while every cell runs on a 4-shard engine
// must recover — via retry or journal resume — to bytes identical to an
// unperturbed single-shard sweep. The two layers are independent by design
// (worker chaos wraps the repetition, shards live inside the engine); this
// test pins the composition.
#include "bench/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace spcd {
namespace {

constexpr std::uint32_t kReps = 1;
constexpr double kScale = 0.02;

bench::PipelineOptions small_grid(const std::string& journal_path,
                                  bool resume) {
  bench::PipelineOptions options;
  options.repetitions = kReps;
  options.scale = kScale;
  options.jobs = 2;
  options.progress = false;
  options.journal_path = journal_path;
  options.resume = resume;
  return options;
}

std::string sweep_with_env(const std::string& journal_path, bool resume,
                           const char* shards, const char* crash,
                           const char* hang,
                           bench::PipelineOutcome* outcome_out = nullptr) {
  ::setenv("SPCD_ENGINE_SHARDS", shards, 1);
  if (crash != nullptr) ::setenv("SPCD_CHAOS_WORKER_CRASH", crash, 1);
  if (hang != nullptr) {
    ::setenv("SPCD_CHAOS_WORKER_HANG", hang, 1);
    ::setenv("SPCD_CHAOS_WORKER_HANG_MS", "20", 1);
    ::setenv("SPCD_CELL_TIMEOUT_MS", "8", 1);  // watchdog cancels the hang
  }
  ::setenv("SPCD_CELL_RETRIES", "2", 1);
  ::setenv("SPCD_CELL_BACKOFF_MS", "1", 1);
  const bench::PipelineOutcome outcome =
      bench::run_pipeline_supervised(small_grid(journal_path, resume));
  ::unsetenv("SPCD_ENGINE_SHARDS");
  ::unsetenv("SPCD_CHAOS_WORKER_CRASH");
  ::unsetenv("SPCD_CHAOS_WORKER_HANG");
  ::unsetenv("SPCD_CHAOS_WORKER_HANG_MS");
  ::unsetenv("SPCD_CELL_TIMEOUT_MS");
  ::unsetenv("SPCD_CELL_RETRIES");
  ::unsetenv("SPCD_CELL_BACKOFF_MS");
  if (outcome_out != nullptr) *outcome_out = outcome;
  return outcome.complete() ? bench::serialize_cache(outcome.results)
                            : std::string();
}

std::string temp_journal(const char* tag) {
  return testing::TempDir() + "worker_chaos_shards_" + tag + ".journal";
}

/// The unperturbed single-shard reference bytes, computed once.
const std::string& reference_bytes() {
  static const std::string bytes = [] {
    const std::string path = temp_journal("reference");
    const std::string b =
        sweep_with_env(path, false, "1", nullptr, nullptr);
    EXPECT_FALSE(b.empty());
    std::remove(path.c_str());
    return b;
  }();
  return bytes;
}

TEST(WorkerChaosShardsTest, CrashedWorkersOnShardedEngineRecoverIdentically) {
  // Crashes retry under supervision; a successful attempt is bit-identical
  // to an undisturbed run, and the 4-shard engine inside each cell must
  // not change a byte of that.
  const std::string path = temp_journal("crash");
  bench::PipelineOutcome outcome;
  const std::string bytes =
      sweep_with_env(path, false, "4", "0.5", nullptr, &outcome);
  if (bytes.empty()) {
    // Past the retry budget some cells quarantined: clear the chaos and
    // resume from the journal, still on 4 shards.
    ASSERT_FALSE(outcome.supervision.quarantined.empty());
    const std::string resumed =
        sweep_with_env(path, true, "4", nullptr, nullptr);
    EXPECT_EQ(resumed, reference_bytes());
  } else {
    EXPECT_GT(outcome.supervision.retried, 0u);
    EXPECT_EQ(bytes, reference_bytes());
  }
  std::remove(path.c_str());
}

TEST(WorkerChaosShardsTest, HangingWorkersOnShardedEngineRecoverIdentically) {
  // Hangs are cancelled by the cell watchdog and retried; the rerun on a
  // 4-shard engine must land on the reference bytes too.
  const std::string path = temp_journal("hang");
  bench::PipelineOutcome outcome;
  const std::string bytes =
      sweep_with_env(path, false, "4", nullptr, "0.5", &outcome);
  if (bytes.empty()) {
    ASSERT_FALSE(outcome.supervision.quarantined.empty());
    const std::string resumed =
        sweep_with_env(path, true, "4", nullptr, nullptr);
    EXPECT_EQ(resumed, reference_bytes());
  } else {
    EXPECT_GT(outcome.supervision.watchdog_fires +
                  outcome.supervision.retried,
              0u);
    EXPECT_EQ(bytes, reference_bytes());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spcd
