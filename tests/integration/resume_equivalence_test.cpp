// The crash-recovery contract of the supervised pipeline: a sweep that
// dies at ANY point — mid-grid kill, chaos-crashed cells, quarantine —
// and is resumed from its journal must merge to a cache that is byte-
// identical to an uninterrupted run, for any worker count.
#include "bench/pipeline.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/journal.hpp"

namespace spcd {
namespace {

constexpr std::uint32_t kReps = 1;
constexpr double kScale = 0.02;

std::string temp_journal(const char* tag) {
  // Pid-unique: ctest runs each TEST as its own process, and concurrent
  // processes each build the shared full-sweep reference — same-path
  // journals would clobber each other under `ctest -j`.
  return testing::TempDir() + "resume_eq_" + tag + "_" +
         std::to_string(::getpid()) + ".journal";
}

bench::PipelineOptions small_grid(const std::string& journal_path,
                                  bool resume, std::uint32_t jobs) {
  bench::PipelineOptions options;
  options.repetitions = kReps;
  options.scale = kScale;
  options.jobs = jobs;
  options.progress = false;
  options.journal_path = journal_path;
  options.resume = resume;
  return options;
}

/// One uninterrupted journaled sweep, computed once and shared by every
/// test in this binary: the reference bytes plus the full journal records.
struct FullSweep {
  std::string cache_bytes;
  std::string meta;
  std::vector<std::string> records;
};

const FullSweep& full_sweep() {
  static const FullSweep sweep = [] {
    const std::string path = temp_journal("full");
    const bench::PipelineOutcome outcome =
        bench::run_pipeline_supervised(small_grid(path, false, 2));
    EXPECT_TRUE(outcome.complete());
    EXPECT_EQ(outcome.cells_resumed, 0u);
    EXPECT_EQ(outcome.journal_records, outcome.cells_total);
    const util::Journal::LoadResult journal = util::Journal::load(path);
    EXPECT_TRUE(journal.valid);
    FullSweep s;
    s.cache_bytes = bench::serialize_cache(outcome.results);
    s.meta = journal.meta;
    s.records = journal.records;
    std::remove(path.c_str());
    return s;
  }();
  return sweep;
}

TEST(ResumeEquivalenceTest, JournalRecordsRoundTripThroughTheParser) {
  const FullSweep& full = full_sweep();
  ASSERT_FALSE(full.records.empty());
  EXPECT_EQ(full.meta, bench::journal_meta(kReps, kScale));
  for (const auto& row : full.records) {
    std::string bench_name;
    core::MappingPolicy policy;
    std::uint32_t rep = 0;
    core::RunMetrics m;
    ASSERT_TRUE(bench::parse_metrics_row(row, bench_name, policy, rep, m))
        << row;
    // Reserialization is the identity: parse loses nothing.
    EXPECT_EQ(bench::serialize_metrics_row(bench_name, policy, rep, m), row);
  }
}

TEST(ResumeEquivalenceTest, ResumeFromAnyPrefixMergesToIdenticalBytes) {
  const FullSweep& full = full_sweep();
  const std::size_t total = full.records.size();
  ASSERT_GE(total, 3u);
  // A crash leaves the journal holding some prefix of the grid. Resume
  // from a mid-sweep crash (jobs=3) and an almost-done crash (jobs=1):
  // different worker counts, same bytes.
  const struct {
    std::size_t keep;
    std::uint32_t jobs;
  } cases[] = {{total / 2, 3}, {total - 1, 1}};
  for (const auto& c : cases) {
    const std::string path = temp_journal("prefix");
    const std::vector<std::string> prefix(full.records.begin(),
                                          full.records.begin() +
                                              static_cast<long>(c.keep));
    { util::Journal::rotate(path, full.meta, prefix); }
    const bench::PipelineOutcome outcome =
        bench::run_pipeline_supervised(small_grid(path, true, c.jobs));
    EXPECT_TRUE(outcome.complete());
    EXPECT_EQ(outcome.cells_resumed, c.keep);
    EXPECT_EQ(outcome.journal_records, total);
    EXPECT_EQ(bench::serialize_cache(outcome.results), full.cache_bytes)
        << "resume with " << c.keep << " journaled cells diverged";
    std::remove(path.c_str());
  }
}

TEST(ResumeEquivalenceTest, MismatchedJournalMetaIsDiscardedNotMerged) {
  // A journal from a different experiment shape (other reps/scale) must
  // not poison the merge: every record in a wrong-meta journal is
  // discarded and the whole grid recomputes from scratch.
  const FullSweep& full = full_sweep();
  const std::string path = temp_journal("stale_meta");
  {
    util::Journal::rotate(path, bench::journal_meta(kReps + 1, kScale),
                          full.records);
  }
  const bench::PipelineOutcome outcome =
      bench::run_pipeline_supervised(small_grid(path, true, 4));
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.cells_resumed, 0u);  // nothing trusted from the journal
  EXPECT_EQ(outcome.journal_records, full.records.size());
  EXPECT_EQ(bench::serialize_cache(outcome.results), full.cache_bytes);
  std::remove(path.c_str());
}

TEST(ResumeEquivalenceTest, QuarantinedSweepResumesAfterChaosIsCleared) {
  const FullSweep& full = full_sweep();
  const std::string path = temp_journal("chaos");
  // Chaos-crash a good fraction of the worker attempts with no retry
  // budget: some cells land in the journal, the rest quarantine. The
  // sweep must finish the survivors instead of aborting.
  ::setenv("SPCD_CHAOS_WORKER_CRASH", "0.6", 1);
  ::setenv("SPCD_CELL_RETRIES", "0", 1);
  ::setenv("SPCD_CELL_BACKOFF_MS", "1", 1);
  const bench::PipelineOutcome crashed =
      bench::run_pipeline_supervised(small_grid(path, false, 2));
  ::unsetenv("SPCD_CHAOS_WORKER_CRASH");
  ::unsetenv("SPCD_CELL_RETRIES");
  ::unsetenv("SPCD_CELL_BACKOFF_MS");
  ASSERT_FALSE(crashed.complete());
  ASSERT_FALSE(crashed.supervision.quarantined.empty());
  EXPECT_EQ(crashed.journal_records + crashed.supervision.quarantined.size(),
            crashed.cells_total);
  EXPECT_EQ(crashed.counters().cells_quarantined,
            crashed.supervision.quarantined.size());

  // Chaos cleared (the crashes are deterministic, so resuming under the
  // same injection would only re-fail the same cells): the journaled
  // cells replay, the quarantined ones recompute, and the merged cache
  // is indistinguishable from a run where nothing ever went wrong.
  const bench::PipelineOutcome recovered =
      bench::run_pipeline_supervised(small_grid(path, true, 2));
  EXPECT_TRUE(recovered.complete());
  EXPECT_EQ(recovered.cells_resumed,
            static_cast<std::size_t>(crashed.journal_records));
  EXPECT_EQ(recovered.counters().cells_resumed, recovered.cells_resumed);
  EXPECT_EQ(bench::serialize_cache(recovered.results), full.cache_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spcd
