// The determinism contract of the parallel engine: a run's results and its
// observability capture are pure functions of the cell, so everything a
// sweep exports — Chrome traces, metrics JSON, RunMetrics — is
// byte-identical for any SPCD_ENGINE_SHARDS value. Shard workers only
// pre-generate op streams and fan out oracle analysis; the timing commit
// stays serial-order, so this is identity by construction, checked here
// end to end through the runner (the same property the CI
// engine-parallel-smoke job checks through the pipeline binary's cache).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics_export.hpp"
#include "core/runner.hpp"
#include "obs/export.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

std::vector<core::RunMetrics> run_grid(const char* shards,
                                       core::MappingPolicy policy) {
  ::setenv("SPCD_ENGINE_SHARDS", shards, 1);
  core::RunnerConfig config;
  config.repetitions = 2;
  config.engine.shards = 0;  // resolve through SPCD_ENGINE_SHARDS
  config.trace.enabled = true;
  config.spcd.mapping_interval = 200'000;
  config.spcd.min_matrix_total = 50;
  core::Runner runner(config);
  auto runs = runner.run_policy("cg", workloads::nas_factory("cg", 0.1),
                                policy);
  ::unsetenv("SPCD_ENGINE_SHARDS");
  return runs;
}

std::string chrome_trace(const std::vector<core::RunMetrics>& runs) {
  std::vector<obs::CaptureRef> captures;
  for (std::size_t rep = 0; rep < runs.size(); ++rep) {
    captures.push_back(obs::CaptureRef{"cg/spcd rep " + std::to_string(rep),
                                       runs[rep].obs.get()});
  }
  return obs::export_chrome_trace(captures);
}

TEST(EngineParallelDeterminismTest, ExportsAreByteIdenticalAcrossShardCounts) {
  const auto serial = run_grid("1", core::MappingPolicy::kSpcd);
  const auto sharded = run_grid("4", core::MappingPolicy::kSpcd);

  ASSERT_EQ(serial.size(), sharded.size());
  for (const auto& m : serial) ASSERT_NE(m.obs, nullptr);
  for (const auto& m : sharded) ASSERT_NE(m.obs, nullptr);

  // Exact string equality, same bar as the SPCD_JOBS contract: epochs,
  // gen-done records and every engine event land at identical simulated
  // times regardless of how many shard workers fed the commit loop.
  EXPECT_EQ(chrome_trace(serial), chrome_trace(sharded));
  EXPECT_EQ(core::metrics_json("cg", "spcd", serial),
            core::metrics_json("cg", "spcd", sharded));
}

TEST(EngineParallelDeterminismTest, RunMetricsAgreeAcrossShardCounts) {
  const auto serial = run_grid("1", core::MappingPolicy::kSpcd);
  const auto sharded = run_grid("8", core::MappingPolicy::kSpcd);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    EXPECT_EQ(serial[rep].exec_seconds, sharded[rep].exec_seconds);
    EXPECT_EQ(serial[rep].instructions, sharded[rep].instructions);
    EXPECT_EQ(serial[rep].minor_faults, sharded[rep].minor_faults);
    EXPECT_EQ(serial[rep].injected_faults, sharded[rep].injected_faults);
    EXPECT_EQ(serial[rep].migration_events, sharded[rep].migration_events);
    EXPECT_EQ(serial[rep].c2c_transactions, sharded[rep].c2c_transactions);
  }
}

TEST(EngineParallelDeterminismTest, OraclePlacementIsShardCountInvariant) {
  // The oracle path exercises ParallelOracleTracer end to end: the fanned-
  // out analysis must yield the same matrix, hence the same placement and
  // the same downstream run results.
  const auto serial = run_grid("1", core::MappingPolicy::kOracle);
  const auto sharded = run_grid("4", core::MappingPolicy::kOracle);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    EXPECT_EQ(serial[rep].exec_seconds, sharded[rep].exec_seconds);
    EXPECT_EQ(serial[rep].instructions, sharded[rep].instructions);
  }
}

TEST(EngineParallelDeterminismTest, TraceContainsEpochAndGenDoneEvents) {
  const auto runs = run_grid("4", core::MappingPolicy::kSpcd);
  const std::string trace = chrome_trace(runs);
  EXPECT_NE(trace.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"gen_done\""), std::string::npos);
}

}  // namespace
}  // namespace spcd
