// The determinism contract of the observability subsystem: a run's capture
// is a pure function of its cell (benchmark, policy, repetition), so the
// exported Chrome trace and metrics JSON are byte-identical for any
// SPCD_JOBS worker count — and a run without tracing carries no capture at
// all (RunMetrics::obs stays null, results untouched).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics_export.hpp"
#include "core/runner.hpp"
#include "obs/export.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

std::vector<core::RunMetrics> run_grid(const char* jobs, bool traced) {
  ::setenv("SPCD_JOBS", jobs, 1);
  core::RunnerConfig config;
  config.repetitions = 3;
  config.jobs = 0;  // resolve through the SPCD_JOBS environment knob
  config.trace.enabled = traced;
  // Make the mapper and filter actually fire at this small scale, so the
  // exported trace covers every instrumented subsystem.
  config.spcd.mapping_interval = 200'000;
  config.spcd.min_matrix_total = 50;
  core::Runner runner(config);
  auto runs = runner.run_policy("cg", workloads::nas_factory("cg", 0.1),
                                core::MappingPolicy::kSpcd);
  ::unsetenv("SPCD_JOBS");
  return runs;
}

std::string chrome_trace(const std::vector<core::RunMetrics>& runs) {
  std::vector<obs::CaptureRef> captures;
  for (std::size_t rep = 0; rep < runs.size(); ++rep) {
    captures.push_back(
        obs::CaptureRef{"cg/spcd rep " + std::to_string(rep),
                        runs[rep].obs.get()});
  }
  return obs::export_chrome_trace(captures);
}

TEST(TraceDeterminismTest, ExportsAreByteIdenticalAcrossJobCounts) {
  const auto serial = run_grid("1", /*traced=*/true);
  const auto parallel = run_grid("4", /*traced=*/true);

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& m : serial) ASSERT_NE(m.obs, nullptr);
  for (const auto& m : parallel) ASSERT_NE(m.obs, nullptr);

  // Exact string equality: the whole point of stamping events with
  // simulated cycles and binding sessions per run.
  EXPECT_EQ(chrome_trace(serial), chrome_trace(parallel));
  EXPECT_EQ(core::metrics_json("cg", "spcd", serial),
            core::metrics_json("cg", "spcd", parallel));
}

TEST(TraceDeterminismTest, TraceCoversEveryInstrumentedSubsystem) {
  const auto runs = run_grid("2", /*traced=*/true);
  const std::string trace = chrome_trace(runs);
  for (const char* cat :
       {"\"cat\":\"detector\"", "\"cat\":\"injector\"", "\"cat\":\"filter\"",
        "\"cat\":\"mapper\"", "\"cat\":\"engine\""}) {
    EXPECT_NE(trace.find(cat), std::string::npos) << cat;
  }
}

TEST(TraceDeterminismTest, CapturedMetricsIncludeDegradationCounters) {
  const auto runs = run_grid("1", /*traced=*/true);
  ASSERT_FALSE(runs.empty());
  ASSERT_NE(runs[0].obs, nullptr);
  const std::string json = core::metrics_json("cg", "spcd", runs);
  for (const auto& d : core::degradation_metric_descriptors()) {
    std::string needle = "\"";
    needle += d.name;
    needle += '"';
    EXPECT_NE(json.find(needle), std::string::npos) << d.name;
  }
}

TEST(TraceDeterminismTest, DisabledTracingCapturesNothing) {
  const auto traced = run_grid("1", /*traced=*/true);
  const auto untraced = run_grid("1", /*traced=*/false);

  ASSERT_EQ(traced.size(), untraced.size());
  for (const auto& m : untraced) EXPECT_EQ(m.obs, nullptr);
  // Tracing must not perturb the simulation itself.
  for (std::size_t rep = 0; rep < traced.size(); ++rep) {
    EXPECT_EQ(traced[rep].exec_seconds, untraced[rep].exec_seconds);
    EXPECT_EQ(traced[rep].instructions, untraced[rep].instructions);
    EXPECT_EQ(traced[rep].migration_events, untraced[rep].migration_events);
  }
}

}  // namespace
}  // namespace spcd
