// Graceful-shutdown contract of the spcd_pipeline binary, end to end in a
// real subprocess: SIGTERM mid-sweep exits 130 and leaves a journal;
// --resume finishes the grid and writes a cache byte-identical to an
// uninterrupted run.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/pipeline.hpp"

namespace spcd {
namespace {

constexpr const char* kReps = "1";
constexpr const char* kScale = "0.02";

std::string tmp_path(const char* name) { return testing::TempDir() + name; }

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::size_t file_size(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::size_t>(st.st_size)
                                        : 0;
}

/// Launch `spcd_pipeline --reps 1 --scale 0.02 --jobs 1 --cache <cache>`
/// (plus `--resume` when asked) and return the child pid.
pid_t spawn_pipeline(const std::string& cache, bool resume) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child. Serial worker keeps the journal growing steadily so the test
  // can interrupt between cells.
  std::vector<const char*> argv;
  for (const char* arg : {SPCD_PIPELINE_BINARY, "--reps", kReps, "--scale",
                          kScale, "--jobs", "1", "--cache", cache.c_str(),
                          "--no-progress"}) {
    argv.push_back(arg);
  }
  if (resume) argv.push_back("--resume");
  argv.push_back(nullptr);
  ::execv(SPCD_PIPELINE_BINARY, const_cast<char* const*>(argv.data()));
  std::perror("execv spcd_pipeline");
  std::_Exit(127);
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not exit normally";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SignalShutdownTest, SigtermMidSweepThenResumeIsByteIdentical) {
  const std::string cache = tmp_path("signal_shutdown.cache");
  const std::string journal = cache + ".journal";
  std::remove(cache.c_str());
  std::remove(journal.c_str());

  // Phase 1: start the sweep and SIGTERM it once the journal shows real
  // progress (at least one completed cell, fsync'd).
  const pid_t pid = spawn_pipeline(cache, false);
  ASSERT_GT(pid, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (file_size(journal) < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(file_size(journal), 100u) << "pipeline never journaled a cell";
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 130);

  // The interrupted sweep leaves its journal for resumption and no cache.
  EXPECT_TRUE(file_exists(journal));
  EXPECT_FALSE(file_exists(cache));

  // Phase 2: --resume completes the grid and removes the merged journal.
  const pid_t resumed = spawn_pipeline(cache, true);
  ASSERT_GT(resumed, 0);
  EXPECT_EQ(wait_for_exit(resumed), 0);
  EXPECT_TRUE(file_exists(cache));
  EXPECT_FALSE(file_exists(journal));

  // Phase 3: the resumed cache carries the exact bytes of an
  // uninterrupted sweep (computed in-process with the same grid shape).
  bench::PipelineResults loaded;
  loaded.repetitions = 1;
  loaded.scale = 0.02;
  ASSERT_TRUE(bench::load_cache_file(cache, loaded));

  bench::PipelineOptions options;
  options.repetitions = 1;
  options.scale = 0.02;
  options.jobs = 2;
  options.progress = false;
  const bench::PipelineOutcome reference =
      bench::run_pipeline_supervised(options);
  ASSERT_TRUE(reference.complete());
  EXPECT_EQ(bench::serialize_cache(loaded),
            bench::serialize_cache(reference.results));
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace spcd
