// The determinism contract of the hierarchical strategy end to end: a full
// simulated run that remaps through the multilevel mapper (small cutoff so
// real coarsening happens even at 32 contexts) must produce identical
// results for any SPCD_ENGINE_SHARDS x SPCD_JOBS combination. The engine
// shards only pre-generate op streams, and the refinement scores gains
// against a frozen placement before applying serially — so worker counts
// must never leak into simulated time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/runner.hpp"
#include "workloads/npb.hpp"

namespace spcd {
namespace {

std::vector<core::RunMetrics> run_hierarchical(const char* shards,
                                               const char* jobs) {
  ::setenv("SPCD_ENGINE_SHARDS", shards, 1);
  ::setenv("SPCD_JOBS", jobs, 1);
  core::RunnerConfig config;
  config.repetitions = 2;
  config.engine.shards = 0;  // resolve through SPCD_ENGINE_SHARDS
  config.spcd.mapping_interval = 200'000;
  config.spcd.min_matrix_total = 50;
  config.spcd.mapping.strategy = "hierarchical";
  config.spcd.mapping.blossom_cutoff = 4;
  config.spcd.mapping.refine_jobs = 0;  // follow SPCD_JOBS
  core::Runner runner(config);
  auto runs = runner.run_policy("cg", workloads::nas_factory("cg", 0.1),
                                core::MappingPolicy::kSpcd);
  ::unsetenv("SPCD_ENGINE_SHARDS");
  ::unsetenv("SPCD_JOBS");
  return runs;
}

TEST(MapperStrategyDeterminismTest, HierarchicalRunsAgreeAcrossWorkerCounts) {
  const auto serial = run_hierarchical("1", "1");
  const auto parallel = run_hierarchical("4", "4");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    EXPECT_EQ(serial[rep].exec_seconds, parallel[rep].exec_seconds);
    EXPECT_EQ(serial[rep].instructions, parallel[rep].instructions);
    EXPECT_EQ(serial[rep].minor_faults, parallel[rep].minor_faults);
    EXPECT_EQ(serial[rep].injected_faults, parallel[rep].injected_faults);
    EXPECT_EQ(serial[rep].migration_events, parallel[rep].migration_events);
    EXPECT_EQ(serial[rep].c2c_transactions, parallel[rep].c2c_transactions);
  }
}

TEST(MapperStrategyDeterminismTest, HierarchicalActuallyRemaps) {
  const auto runs = run_hierarchical("2", "2");
  ASSERT_FALSE(runs.empty());
  std::uint64_t migrations = 0;
  for (const auto& m : runs) migrations += m.migration_events;
  EXPECT_GT(migrations, 0u) << "the strategy never produced a remap, so the "
                               "determinism check above was vacuous";
}

}  // namespace
}  // namespace spcd
