// The determinism contract of the parallel experiment pipeline: any
// SPCD_JOBS value must produce bit-identical results, down to the bytes of
// the v3 cache file. A small grid is computed serially and with 4 workers
// and compared cell by cell and byte by byte.
#include "bench/pipeline.hpp"

#include <gtest/gtest.h>

#include "workloads/npb.hpp"

namespace spcd {
namespace {

bench::PipelineResults compute_grid(std::uint32_t jobs) {
  bench::PipelineOptions options;
  options.repetitions = 2;
  options.scale = 0.02;
  options.jobs = jobs;
  options.progress = false;
  return bench::compute_pipeline(options);
}

TEST(PipelineDeterminismTest, ParallelRunMatchesSerialRunExactly) {
  const bench::PipelineResults serial = compute_grid(1);
  const bench::PipelineResults parallel = compute_grid(4);

  ASSERT_EQ(serial.results.size(), workloads::nas_benchmarks().size());
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (const auto& [bench_name, by_policy] : serial.results) {
    ASSERT_TRUE(parallel.results.count(bench_name)) << bench_name;
    for (const auto& [policy, runs] : by_policy) {
      const auto& other = parallel.runs(bench_name, policy);
      ASSERT_EQ(runs.size(), other.size());
      for (std::size_t rep = 0; rep < runs.size(); ++rep) {
        const core::RunMetrics& a = runs[rep];
        const core::RunMetrics& b = other[rep];
        const std::string where = bench_name + "/" +
                                  core::to_string(policy) + " rep " +
                                  std::to_string(rep);
        // Exact equality on purpose: the simulation is deterministic, so
        // the parallel schedule must not perturb a single bit.
        EXPECT_EQ(a.exec_seconds, b.exec_seconds) << where;
        EXPECT_EQ(a.instructions, b.instructions) << where;
        EXPECT_EQ(a.l2_mpki, b.l2_mpki) << where;
        EXPECT_EQ(a.l3_mpki, b.l3_mpki) << where;
        EXPECT_EQ(a.c2c_transactions, b.c2c_transactions) << where;
        EXPECT_EQ(a.invalidations, b.invalidations) << where;
        EXPECT_EQ(a.dram_accesses, b.dram_accesses) << where;
        EXPECT_EQ(a.package_joules, b.package_joules) << where;
        EXPECT_EQ(a.dram_joules, b.dram_joules) << where;
        EXPECT_EQ(a.detection_overhead, b.detection_overhead) << where;
        EXPECT_EQ(a.mapping_overhead, b.mapping_overhead) << where;
        EXPECT_EQ(a.migration_events, b.migration_events) << where;
        EXPECT_EQ(a.minor_faults, b.minor_faults) << where;
        EXPECT_EQ(a.injected_faults, b.injected_faults) << where;
      }
    }
  }

  // The byte-compatibility guarantee for the cache file itself.
  EXPECT_EQ(bench::serialize_cache(serial), bench::serialize_cache(parallel));
}

TEST(PipelineDeterminismTest, RecomputingSerialGridIsStable) {
  // Guards the test above against vacuous success: the serial grid itself
  // must be reproducible run to run.
  EXPECT_EQ(bench::serialize_cache(compute_grid(1)),
            bench::serialize_cache(compute_grid(1)));
}

}  // namespace
}  // namespace spcd
