// The CLI error contract: any malformed input — unknown flag or policy,
// invalid configuration — makes spcdsim exit with code 2 (see ConfigError
// in core/spcd_config.hpp). The binary path is injected by CMake as
// SPCDSIM_BINARY.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <string>

namespace {

int exit_code_of(const std::string& args) {
  const std::string cmd =
      std::string(SPCDSIM_BINARY) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

TEST(CliExitCodeTest, InvalidSpcdConfigExitsTwo) {
  // extra_fault_ratio must be in (0, 1]: rejected by SpcdConfig::validate()
  // before any simulation runs.
  EXPECT_EQ(exit_code_of("--fault-ratio 0"), 2);
  EXPECT_EQ(exit_code_of("--fault-ratio 1.5"), 2);
}

TEST(CliExitCodeTest, UnknownPolicyExitsTwo) {
  EXPECT_EQ(exit_code_of("--policy linux"), 2);
}

TEST(CliExitCodeTest, UnknownFlagExitsTwo) {
  EXPECT_EQ(exit_code_of("--frobnicate"), 2);
}

TEST(CliExitCodeTest, HelpExitsZero) {
  EXPECT_EQ(exit_code_of("--help"), 0);
}

}  // namespace
