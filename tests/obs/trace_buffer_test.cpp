#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace spcd::obs {
namespace {

TraceEvent instant_at(util::Cycles t) {
  return TraceEvent{t, "test", "ev", EventKind::kInstant, {}, {}};
}

TEST(TraceBufferTest, HoldsEverythingBelowCapacity) {
  TraceBuffer buf(8);
  for (util::Cycles t = 0; t < 5; ++t) buf.record(instant_at(t));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.recorded(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, i);
  }
}

TEST(TraceBufferTest, WrapOverwritesOldestAndCountsDrops) {
  TraceBuffer buf(4);
  for (util::Cycles t = 0; t < 11; ++t) buf.record(instant_at(t));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 11u);
  EXPECT_EQ(buf.dropped(), 7u);
  // The newest `capacity` events survive, oldest first.
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, 7 + i);
  }
}

TEST(TraceBufferTest, ExactlyFullIsNotADrop) {
  TraceBuffer buf(4);
  for (util::Cycles t = 0; t < 4; ++t) buf.record(instant_at(t));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.snapshot().front().time, 0u);
  // One more event tips it over: exactly one drop.
  buf.record(instant_at(4));
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.snapshot().front().time, 1u);
}

TEST(TraceBufferTest, CapacityOneKeepsOnlyTheNewest) {
  TraceBuffer buf(1);
  for (util::Cycles t = 0; t < 3; ++t) buf.record(instant_at(t));
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time, 2u);
  EXPECT_EQ(buf.dropped(), 2u);
}

TEST(SessionTest, CaptureReflectsOverflowAccounting) {
  TraceConfig config;
  config.enabled = true;
  config.buffer_events = 64;
  Session session(config);
  for (util::Cycles t = 0; t < 100; ++t) {
    session.record(EventKind::kInstant, "test", "ev", t, {}, {});
  }
  const RunCapture cap = session.capture();
  EXPECT_EQ(cap.events.size(), 64u);
  EXPECT_EQ(cap.recorded, 100u);
  EXPECT_EQ(cap.dropped, 36u);
  EXPECT_EQ(cap.events.front().time, 36u);
  EXPECT_EQ(cap.events.back().time, 99u);
}

TEST(SessionTest, LastTimeIsMonotone) {
  TraceConfig config;
  config.buffer_events = 64;
  Session session(config);
  session.record(EventKind::kInstant, "test", "a", 50, {}, {});
  session.record(EventKind::kInstant, "test", "b", 20, {}, {});
  EXPECT_EQ(session.last_time(), 50u);
}

TEST(ScopedSessionTest, BindsRestoresAndSilences) {
  EXPECT_EQ(current_session(), nullptr);
  TraceConfig config;
  config.buffer_events = 64;
  Session session(config);
  {
    ScopedSession outer(&session);
    EXPECT_EQ(current_session(), &session);
    trace_instant("test", "captured", 1);
    {
      // nullptr explicitly silences capture (the oracle-profiling rule).
      ScopedSession inner(nullptr);
      EXPECT_EQ(current_session(), nullptr);
      trace_instant("test", "silenced", 2);
    }
    EXPECT_EQ(current_session(), &session);
  }
  EXPECT_EQ(current_session(), nullptr);
  const RunCapture cap = session.capture();
  ASSERT_EQ(cap.events.size(), 1u);
  EXPECT_STREQ(cap.events[0].name, "captured");
}

TEST(ScopedSessionTest, TraceHelpersAreNoopsWithoutSession) {
  ASSERT_EQ(current_session(), nullptr);
  trace_instant("test", "nobody-listens", 7, {"a", 1});
  trace_counter("test", "nobody-counts", 8, 42);
}

TEST(TraceConfigTest, DefaultsAreOffWithSixteenKEvents) {
  const TraceConfig config;
  EXPECT_FALSE(config.enabled);
  EXPECT_EQ(config.buffer_events, std::size_t{1} << 16);
}

}  // namespace
}  // namespace spcd::obs
