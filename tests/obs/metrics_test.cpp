#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace spcd::obs {
namespace {

TEST(CounterTest, AddsWithDefaultIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_EQ(g.value(), -2.5);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.0);   // <= 1 -> bucket 0
  h.observe(1.0);   // == bound -> bucket 0 (inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.01);  // > last bound -> overflow
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 4.01);
}

TEST(HistogramTest, NegativeAndVerySmallLandInFirstBucket) {
  Histogram h({1.0, 2.0});
  h.observe(-100.0);
  h.observe(1e-300);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.min(), -100.0);
}

TEST(HistogramTest, NanLandsInOverflowBucket) {
  Histogram h({1.0, 2.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, Pow2BucketsArePowersOfTwo) {
  const auto bounds = Histogram::pow2_buckets(5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 1.0);
  EXPECT_EQ(bounds.back(), 16.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], 2.0 * bounds[i - 1]);
  }
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstances) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c = reg.counter("x");
  c.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(&reg.counter("x"), &c);
  EXPECT_FALSE(reg.empty());

  Histogram& h = reg.histogram("h", {1.0, 2.0});
  h.observe(1.0);
  // Later lookups ignore the (different) bounds and return the original.
  Histogram& again = reg.histogram("h", {100.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
  EXPECT_EQ(again.count(), 1u);
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.gauge("g").set(0.5);
  reg.histogram("h", {1.0}).observe(3.0);

  JsonWriter w;
  reg.write_json(w);
  const std::string json = w.str();
  EXPECT_EQ(json,
            "{\"counters\":{\"a\":2,\"z\":1},"
            "\"gauges\":{\"g\":0.5},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":3,"
            "\"min\":3,\"max\":3,\"bounds\":[1],\"buckets\":[0,1]}}}");
}

TEST(MetricsRegistryTest, EmptyHistogramOmitsMinMax) {
  MetricsRegistry reg;
  (void)reg.histogram("h", {1.0});
  JsonWriter w;
  reg.write_json(w);
  const std::string json = w.str();
  EXPECT_EQ(json.find("min"), std::string::npos);
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
}

}  // namespace
}  // namespace spcd::obs
