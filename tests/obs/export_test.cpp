#include <cctype>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace spcd::obs {
namespace {

// Minimal recursive-descent JSON validator: enough to prove the exporters
// emit well-formed documents without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters are not allowed
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

RunCapture sample_capture() {
  TraceConfig config;
  config.buffer_events = 64;
  Session session(config);
  session.record(EventKind::kInstant, "detector", "fault", 10,
                 {"tid", 3}, {"comm", 1});
  session.record(EventKind::kCounter, "mapper", "matrix_total", 20,
                 {"value", 250}, {});
  session.record(EventKind::kInstant, "weird-cat", "mystery", 30, {}, {});
  session.log("WARN", "some \"quoted\" text\nwith a newline");
  return session.capture();
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.begin_object();
  w.key("a").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2})
      .end_array();
  w.key("b").begin_object().key("c").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[1,2],\"b\":{\"c\":true}}");
}

TEST(CategoryLaneTest, KnownLanesAreStableAndUnknownShared) {
  EXPECT_EQ(category_lane("detector"), 0u);
  EXPECT_EQ(category_lane("injector"), 1u);
  EXPECT_EQ(category_lane("filter"), 2u);
  EXPECT_EQ(category_lane("mapper"), 3u);
  EXPECT_EQ(category_lane("engine"), 4u);
  EXPECT_EQ(category_lane("log"), 5u);
  EXPECT_EQ(category_lane("weird-cat"), 6u);
  EXPECT_EQ(category_lane(nullptr), 6u);
}

TEST(ChromeTraceExportTest, ProducesWellFormedJson) {
  const RunCapture cap = sample_capture();
  const std::string json =
      export_chrome_trace({CaptureRef{"cg/spcd rep 0", &cap}});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Structure spot checks: instants, counters, metadata and the log line.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"cg/spcd rep 0\""), std::string::npos);
  EXPECT_NE(json.find("\"matrix_total\""), std::string::npos);
  EXPECT_NE(json.find("some \\\"quoted\\\" text"), std::string::npos);
}

TEST(ChromeTraceExportTest, NullAndEmptyCapturesAreHandled) {
  const std::string empty = export_chrome_trace({});
  EXPECT_TRUE(JsonChecker(empty).valid()) << empty;
  EXPECT_NE(empty.find("\"traceEvents\":[]"), std::string::npos);

  const std::string skipped =
      export_chrome_trace({CaptureRef{"untraced", nullptr}});
  EXPECT_TRUE(JsonChecker(skipped).valid()) << skipped;
  EXPECT_NE(skipped.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(ChromeTraceExportTest, IsDeterministic) {
  const RunCapture cap = sample_capture();
  const std::vector<CaptureRef> refs{CaptureRef{"r0", &cap},
                                     CaptureRef{"r1", &cap}};
  EXPECT_EQ(export_chrome_trace(refs), export_chrome_trace(refs));
}

TEST(CountersCsvExportTest, OneRowPerCounterEvent) {
  const RunCapture cap = sample_capture();
  const std::string csv =
      export_counters_csv({CaptureRef{"cg/spcd rep 0", &cap}});
  EXPECT_EQ(csv,
            "run,time_cycles,category,name,value\n"
            "cg/spcd rep 0,20,mapper,matrix_total,250\n");
}

}  // namespace
}  // namespace spcd::obs
