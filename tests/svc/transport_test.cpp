// Transport contract, exercised on both wires: frames arrive whole and in
// order, recv honors its timeout, close() wakes a blocked peer with
// kClosed, and the Unix-socket path survives a real filesystem bind.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/transport.hpp"

namespace spcd::svc {
namespace {

std::string tmp_socket(const char* name) { return testing::TempDir() + name; }

TEST(SvcTransportTest, InProcFramesArriveWholeAndInOrder) {
  auto [client, server] = make_inproc_pair();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->send("frame-" + std::to_string(i)));
  }
  std::string payload;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(server->recv(&payload, 0), Transport::RecvStatus::kFrame);
    EXPECT_EQ(payload, "frame-" + std::to_string(i));
  }
  EXPECT_EQ(server->recv(&payload, 0), Transport::RecvStatus::kTimeout);
}

TEST(SvcTransportTest, InProcIsBidirectional) {
  auto [client, server] = make_inproc_pair();
  ASSERT_TRUE(client->send("ping"));
  std::string payload;
  ASSERT_EQ(server->recv(&payload, 100), Transport::RecvStatus::kFrame);
  ASSERT_TRUE(server->send("pong"));
  ASSERT_EQ(client->recv(&payload, 100), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "pong");
}

TEST(SvcTransportTest, InProcCloseDrainsThenReportsClosed) {
  auto [client, server] = make_inproc_pair();
  ASSERT_TRUE(client->send("last"));
  client->close();
  EXPECT_FALSE(client->send("after close"));
  std::string payload;
  // The frame sent before close is still delivered; only then kClosed.
  ASSERT_EQ(server->recv(&payload, 100), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "last");
  EXPECT_EQ(server->recv(&payload, 100), Transport::RecvStatus::kClosed);
}

TEST(SvcTransportTest, InProcCloseWakesBlockedRecv) {
  auto [client, server] = make_inproc_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    client->close();
  });
  std::string payload;
  EXPECT_EQ(server->recv(&payload, -1), Transport::RecvStatus::kClosed);
  closer.join();
}

TEST(SvcTransportTest, InProcListenerHandsOutConnectedPairs) {
  InProcListener listener;
  auto client = listener.connect();
  ASSERT_NE(client, nullptr);
  auto server = listener.accept(100);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(client->send("hello"));
  std::string payload;
  ASSERT_EQ(server->recv(&payload, 100), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "hello");
  listener.close();
  EXPECT_EQ(listener.accept(10), nullptr);
  EXPECT_EQ(listener.connect(), nullptr);
}

TEST(SvcTransportTest, UnixSocketRoundTrip) {
  const std::string path = tmp_socket("svc_transport_rt.sock");
  std::string error;
  auto listener = listen_unix(path, &error);
  ASSERT_NE(listener, nullptr) << error;

  auto client = connect_unix(path, 2000, &error);
  ASSERT_NE(client, nullptr) << error;
  auto server = listener->accept(2000);
  ASSERT_NE(server, nullptr);

  const std::string big(100'000, 'x');
  ASSERT_TRUE(client->send(big));
  ASSERT_TRUE(client->send("tail"));
  std::string payload;
  ASSERT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, big);
  ASSERT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "tail");

  client->close();
  EXPECT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kClosed);
  listener->close();
}

TEST(SvcTransportTest, UnixSocketRecvTimesOutWithoutData) {
  const std::string path = tmp_socket("svc_transport_to.sock");
  std::string error;
  auto listener = listen_unix(path, &error);
  ASSERT_NE(listener, nullptr) << error;
  auto client = connect_unix(path, 2000, &error);
  ASSERT_NE(client, nullptr) << error;
  auto server = listener->accept(2000);
  ASSERT_NE(server, nullptr);

  std::string payload;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(server->recv(&payload, 50), Transport::RecvStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(40));
  listener->close();
}

TEST(SvcTransportTest, ConnectTimesOutWithoutServer) {
  std::string error;
  EXPECT_EQ(connect_unix(tmp_socket("svc_transport_none.sock"), 100, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SvcTransportTest, TcpRoundTripOnEphemeralPort) {
  std::string error;
  std::uint16_t port = 0;
  auto listener = listen_tcp("127.0.0.1", 0, &port, &error);
  ASSERT_NE(listener, nullptr) << error;
  ASSERT_NE(port, 0) << "ephemeral port was not resolved";

  auto client = connect_tcp("127.0.0.1", port, 2000, &error);
  ASSERT_NE(client, nullptr) << error;
  auto server = listener->accept(2000);
  ASSERT_NE(server, nullptr);

  const std::string big(100'000, 'y');
  ASSERT_TRUE(client->send(big));
  ASSERT_TRUE(server->send("ack"));
  std::string payload;
  ASSERT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, big);
  ASSERT_EQ(client->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "ack");

  client->close();
  EXPECT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kClosed);
  listener->close();
}

TEST(SvcTransportTest, TcpConnectTimesOutWithoutServer) {
  // Grab an ephemeral port, then close the listener so nothing is bound.
  std::string error;
  std::uint16_t port = 0;
  {
    auto listener = listen_tcp("127.0.0.1", 0, &port, &error);
    ASSERT_NE(listener, nullptr) << error;
    listener->close();
  }
  EXPECT_EQ(connect_tcp("127.0.0.1", port, 100, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SvcTransportTest, TornSendYieldsMidFrameEofOnBothWires) {
  // Unix socket: a send_torn delivers the length prefix plus a short
  // payload prefix then closes — the peer must report kError (a torn
  // frame is a protocol violation, not a clean close).
  const std::string path = tmp_socket("svc_transport_torn.sock");
  std::string error;
  auto listener = listen_unix(path, &error);
  ASSERT_NE(listener, nullptr) << error;
  auto client = connect_unix(path, 2000, &error);
  ASSERT_NE(client, nullptr) << error;
  auto server = listener->accept(2000);
  ASSERT_NE(server, nullptr);

  EXPECT_FALSE(client->send_torn("twelve bytes", 5));
  std::string payload;
  EXPECT_EQ(server->recv(&payload, 2000), Transport::RecvStatus::kError);
  listener->close();

  // TCP: identical contract.
  std::uint16_t port = 0;
  auto tcp_listener = listen_tcp("127.0.0.1", 0, &port, &error);
  ASSERT_NE(tcp_listener, nullptr) << error;
  auto tcp_client = connect_tcp("127.0.0.1", port, 2000, &error);
  ASSERT_NE(tcp_client, nullptr) << error;
  auto tcp_server = tcp_listener->accept(2000);
  ASSERT_NE(tcp_server, nullptr);
  EXPECT_FALSE(tcp_client->send_torn("twelve bytes", 5));
  EXPECT_EQ(tcp_server->recv(&payload, 2000), Transport::RecvStatus::kError);
  tcp_listener->close();
}

TEST(SvcTransportTest, RebindReplacesStaleSocketFile) {
  const std::string path = tmp_socket("svc_transport_stale.sock");
  std::string error;
  auto first = listen_unix(path, &error);
  ASSERT_NE(first, nullptr) << error;
  first->close();
  first.reset();
  // The socket file is left behind; a fresh daemon must be able to bind.
  auto second = listen_unix(path, &error);
  ASSERT_NE(second, nullptr) << error;
  second->close();
}

}  // namespace
}  // namespace spcd::svc
