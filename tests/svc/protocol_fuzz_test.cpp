// Property/fuzz harness for svc::parse_message: the daemon feeds it
// attacker-controlled bytes, so for ANY input it must either reject
// (nullopt) or produce a message whose every field satisfies the
// protocol's documented invariants — and never read out of bounds (the
// ASan job runs this binary). Three generators:
//
//   * pure noise: seeded random bytes at adversarial lengths,
//   * mutated frames: valid encodings with random byte flips,
//   * spliced frames: valid encodings truncated / extended / crossbred.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "util/rng.hpp"

namespace spcd::svc {
namespace {

// A parse that succeeds must hand the server a message it can act on
// blindly: every invariant the session loop relies on holds.
void expect_invariants(const std::string& payload) {
  const auto msg = parse_message(payload);
  if (!msg.has_value()) return;
  switch (msg->type) {
    case MessageType::kHello:
    case MessageType::kResume:
      EXPECT_TRUE(valid_tenant_name(msg->name)) << "name: " << msg->name;
      break;
    case MessageType::kFaultBatch:
      EXPECT_LE(msg->events.size(), kMaxBatchEvents);
      break;
    case MessageType::kWelcome:
    case MessageType::kBatchAck:
    case MessageType::kReRegister:
    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatAck:
    case MessageType::kRetry:
    case MessageType::kStats:
    case MessageType::kStatsReply:
    case MessageType::kError:
    case MessageType::kBye:
    case MessageType::kShutdown:
      break;
    default:
      FAIL() << "parse produced an unknown message type: "
             << static_cast<int>(msg->type);
  }
}

std::vector<std::string> valid_frames() {
  std::vector<FaultRecord> events;
  for (std::uint32_t i = 0; i < 64; ++i) {
    events.push_back({0x1000u * i, i % 8, 10u + i});
  }
  return {
      encode_hello("fuzz-tenant", 8),
      encode_welcome(3, 40),
      encode_fault_batch(17, events),
      encode_fault_batch(0, {}),
      encode_batch_ack(17, 0x123456789abcdef0ULL, 9),
      encode_reregister(21, 16),
      encode_heartbeat(17),
      encode_heartbeat_ack(0xfeedface12345678ULL),
      encode_resume(5, "fuzz-tenant"),
      encode_retry(9, 25),
      encode_stats(),
      encode_stats_reply("{\"schema\":\"spcd-service-v2\"}"),
      encode_error("tenant departed"),
      encode_bye(),
      encode_shutdown(),
  };
}

TEST(SvcProtocolFuzzTest, RandomBytesNeverCrashAndNeverLeakInvariants) {
  util::Xoshiro256 rng(util::derive_seed(0xF022, 1));
  // Adversarial lengths: tiny frames, header-boundary sizes, and a few
  // big ones (count fields claiming more than the payload carries).
  const std::size_t lengths[] = {1, 2, 3, 4, 5, 8, 9, 12, 13, 16,
                                 17, 21, 32, 64, 255, 1024, 65536};
  for (const std::size_t len : lengths) {
    for (int round = 0; round < 200; ++round) {
      std::string payload(len, '\0');
      for (char& c : payload) {
        c = static_cast<char>(rng.below(256));
      }
      expect_invariants(payload);
    }
  }
}

TEST(SvcProtocolFuzzTest, MutatedValidFramesNeverCrash) {
  util::Xoshiro256 rng(util::derive_seed(0xF022, 2));
  for (const std::string& frame : valid_frames()) {
    for (int round = 0; round < 400; ++round) {
      std::string mutated = frame;
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^
            static_cast<unsigned char>(1u << rng.below(8)));
      }
      expect_invariants(mutated);
    }
  }
}

TEST(SvcProtocolFuzzTest, SplicedFramesNeverCrash) {
  util::Xoshiro256 rng(util::derive_seed(0xF022, 3));
  const std::vector<std::string> frames = valid_frames();
  for (int round = 0; round < 2000; ++round) {
    const std::string& a = frames[rng.below(frames.size())];
    const std::string& b = frames[rng.below(frames.size())];
    // Concatenate a random prefix of one frame with a random suffix of
    // another: models half-read streams and retransmit garbage.
    const std::size_t cut_a = rng.below(a.size() + 1);
    const std::size_t cut_b = rng.below(b.size() + 1);
    expect_invariants(a.substr(0, cut_a) + b.substr(cut_b));
  }
}

TEST(SvcProtocolFuzzTest, EveryTruncationOfEveryFrameIsRejectedOrSane) {
  for (const std::string& frame : valid_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      expect_invariants(frame.substr(0, len));
    }
  }
}

TEST(SvcProtocolFuzzTest, TotalRejectionOfNoiseWithInvalidTypeByte) {
  // Payloads whose type byte is outside the protocol must ALWAYS be
  // rejected, regardless of what follows.
  util::Xoshiro256 rng(util::derive_seed(0xF022, 4));
  for (int round = 0; round < 500; ++round) {
    std::string payload(1 + rng.below(128), '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.below(256));
    }
    payload[0] = static_cast<char>(15 + rng.below(241));  // > kRetry
    EXPECT_FALSE(parse_message(payload).has_value());
  }
}

}  // namespace
}  // namespace spcd::svc
