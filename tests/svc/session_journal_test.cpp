// Session-journal codec: every record kind round-trips encode -> parse,
// the meta line binds the deterministic config shape, and malformed lines
// are rejected strictly (the replayer parses crash leftovers).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc/session_journal.hpp"

namespace spcd::svc {
namespace {

TEST(SvcSessionJournalTest, RegisterRoundTrip) {
  const auto rec =
      parse_session_record(encode_register(3, "tenant-x", 16, 42));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->kind, SessionRecord::Kind::kRegister);
  EXPECT_EQ(rec->tenant_id, 3u);
  EXPECT_EQ(rec->name, "tenant-x");
  EXPECT_EQ(rec->num_threads, 16u);
  EXPECT_EQ(rec->base_tid, 42u);
}

TEST(SvcSessionJournalTest, BatchRoundTrip) {
  std::vector<FaultRecord> events;
  for (std::uint32_t i = 0; i < 50; ++i) {
    events.push_back({0xdeadbeef000ULL + i * 0x1000, i % 4, 1'000'000u + i});
  }
  const auto rec = parse_session_record(encode_batch(7, 99, events));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->kind, SessionRecord::Kind::kBatch);
  EXPECT_EQ(rec->tenant_id, 7u);
  EXPECT_EQ(rec->batch_seq, 99u);
  EXPECT_EQ(rec->events, events);
}

TEST(SvcSessionJournalTest, ExitAndDecisionRoundTrip) {
  const auto exit_rec = parse_session_record(encode_exit(5));
  ASSERT_TRUE(exit_rec.has_value());
  EXPECT_EQ(exit_rec->kind, SessionRecord::Kind::kExit);
  EXPECT_EQ(exit_rec->tenant_id, 5u);

  const auto arb = parse_session_record(
      encode_decision(12, 8192, 0xfedcba9876543210ULL));
  ASSERT_TRUE(arb.has_value());
  EXPECT_EQ(arb->kind, SessionRecord::Kind::kDecision);
  EXPECT_EQ(arb->decision_seq, 12u);
  EXPECT_EQ(arb->event_time, 8192u);
  EXPECT_EQ(arb->digest, 0xfedcba9876543210ULL);
}

TEST(SvcSessionJournalTest, RejectsMalformedLines) {
  for (const char* line :
       {"", "bogus 1 2 3", "reg", "reg x 2 0 name", "reg 1 2 0",
        "batch 1 2", "batch 1 2 2 1000,0,1", "batch 1 2 1 nothex,0,1",
        "exit", "exit notanumber", "arb 1 2", "arb 1 2 xyzq",
        "reg 1 2 0 name extra"}) {
    EXPECT_FALSE(parse_session_record(line).has_value()) << line;
  }
}

TEST(SvcSessionJournalTest, MetaRoundTripBindsConfigShape) {
  ServiceConfig config;
  config.topology = arch::TopologySpec{4, 6, 2};
  config.shards = 16;
  config.table.num_entries = 100'000;
  config.table.granularity_shift = 6;
  config.table.time_window = 5'000;
  config.arbitration_interval = 2048;
  config.journal_path = "/irrelevant/to/meta";

  ServiceConfig parsed;
  ASSERT_TRUE(parse_service_meta(service_meta(config), &parsed));
  EXPECT_EQ(parsed.topology.sockets, 4u);
  EXPECT_EQ(parsed.topology.cores_per_socket, 6u);
  EXPECT_EQ(parsed.topology.smt_per_core, 2u);
  EXPECT_EQ(parsed.shards, 16u);
  EXPECT_EQ(parsed.table.num_entries, 100'000u);
  EXPECT_EQ(parsed.table.granularity_shift, 6u);
  EXPECT_EQ(parsed.table.time_window, 5'000u);
  EXPECT_EQ(parsed.arbitration_interval, 2048u);
  EXPECT_TRUE(parsed.journal_path.empty());
}

TEST(SvcSessionJournalTest, MetaRejectsForeignVersions) {
  ServiceConfig parsed;
  EXPECT_FALSE(parse_service_meta("", &parsed));
  EXPECT_FALSE(parse_service_meta("spcd-journal v1 something", &parsed));
  EXPECT_FALSE(parse_service_meta(
      "spcd-service-v999 topo=2x8x2 shards=8 entries=256000 gran=12 "
      "window=0 interval=4096",
      &parsed));
}

}  // namespace
}  // namespace spcd::svc
