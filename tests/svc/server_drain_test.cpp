// ServiceServer shutdown contract under load: with many tenants
// concurrently registered and mid-conversation, request_stop() drains
// every session within the configured drain window, every tenant that was
// journaled stays journaled (no record is lost to the shutdown race), and
// the journal still replays cleanly.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/driver.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/transport.hpp"

namespace spcd::svc {
namespace {

std::string tmp_journal(const char* name) { return testing::TempDir() + name; }

TEST(SvcServerDrainTest, ManyTenantsCompleteAndDrainCleanly) {
  SpcdService service((ServiceConfig()));
  ServerConfig server_config;
  server_config.recv_timeout_ms = 10;
  ServiceServer server(service, server_config);

  InProcListener listener;
  std::thread acceptor([&] { server.accept_loop(listener); });

  DriverConfig driver;
  driver.tenants = 32;
  driver.threads_per_tenant = 2;
  driver.batches_per_tenant = 4;
  driver.events_per_batch = 128;
  const DriverStats stats =
      drive(driver, [&](std::uint32_t, std::uint32_t) {
        return listener.connect();
      });
  EXPECT_EQ(stats.tenants_completed, 32u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.batches_acked, 32u * 4u);

  listener.close();
  server.request_stop();
  acceptor.join();
  const util::SupervisorReport report = server.drain();
  EXPECT_EQ(report.completed, 32u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(server.sessions_started(), 32u);
  EXPECT_EQ(service.active_tenants(), 0u);  // every tenant said bye
}

TEST(SvcServerDrainTest, StopMidSessionDrainsWithinWindowAndLosesNoRecord) {
  const std::string path = tmp_journal("svc_server_drain.journal");
  std::remove(path.c_str());
  ServiceConfig config;
  config.journal_path = path;
  SpcdService service(config);

  ServerConfig server_config;
  server_config.recv_timeout_ms = 10;
  server_config.supervisor.drain_ms = 2'000;
  ServiceServer server(service, server_config);

  InProcListener listener;
  std::thread acceptor([&] { server.accept_loop(listener); });

  // 24 tenants register and send one batch each, then hold their
  // connections open (no bye) — the stop must tear them down.
  constexpr std::uint32_t kTenants = 24;
  DriverConfig driver;
  driver.threads_per_tenant = 2;
  std::vector<std::unique_ptr<Transport>> clients;
  std::vector<std::uint64_t> acked_seqs;
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    auto client = listener.connect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(
        client->send(encode_hello("hold-" + std::to_string(t), 2)));
    std::string payload;
    ASSERT_EQ(client->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    const auto welcome = parse_message(payload);
    ASSERT_TRUE(welcome.has_value());
    ASSERT_EQ(welcome->type, MessageType::kWelcome);
    ASSERT_TRUE(
        client->send(encode_fault_batch(1, scripted_batch(driver, t, 0))));
    ASSERT_EQ(client->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    const auto ack = parse_message(payload);
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, MessageType::kBatchAck);
    acked_seqs.push_back(ack->seq);
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(service.active_tenants(), kTenants);

  // Stop with every session mid-conversation; the drain must finish well
  // within the configured window (sessions poll every recv_timeout_ms).
  const auto t0 = std::chrono::steady_clock::now();
  listener.close();
  server.request_stop();
  acceptor.join();
  const util::SupervisorReport report = server.drain();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed,
            std::chrono::milliseconds(server_config.supervisor.drain_ms));
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.completed + report.skipped, kTenants);

  // Each held client observes the shutdown: a kShutdown frame or a close.
  for (auto& client : clients) {
    std::string payload;
    const auto status = client->recv(&payload, 2000);
    if (status == Transport::RecvStatus::kFrame) {
      const auto msg = parse_message(payload);
      ASSERT_TRUE(msg.has_value());
      EXPECT_EQ(msg->type, MessageType::kShutdown);
    } else {
      EXPECT_EQ(status, Transport::RecvStatus::kClosed);
    }
    client->close();
  }

  // The write-ahead contract survives the shutdown: every acked commit is
  // in the journal, and the journal replays with zero divergence.
  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.service->registered_tenants(), kTenants);
  EXPECT_EQ(replayed.service->total_events(),
            static_cast<std::uint64_t>(kTenants) * driver.events_per_batch);
  for (const std::uint64_t seq : acked_seqs) {
    EXPECT_LE(seq, replayed.records_applied + replayed.decisions_checked);
  }
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spcd::svc
