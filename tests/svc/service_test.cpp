// SpcdService: the commit contracts (validate before journaling, journal
// before applying), the arbitration cadence, the metrics/decisions
// surfaces, and journal replay — a session rebuilt from its own journal
// reproduces the decision stream byte for byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "svc/driver.hpp"
#include "svc/service.hpp"

namespace spcd::svc {
namespace {

std::string tmp_journal(const char* name) { return testing::TempDir() + name; }

ServiceConfig small_config() {
  ServiceConfig config;
  config.arbitration_interval = 1024;
  return config;
}

std::vector<FaultRecord> pair_batch(std::uint32_t events) {
  std::vector<FaultRecord> batch;
  batch.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    // Threads 0 and 1 alternate on the same page before moving to the
    // next one, so every access after the first finds its partner.
    batch.push_back({((i / 2) % 16) << 12, i % 2, i + 1});
  }
  return batch;
}

TEST(SvcServiceTest, RegisterAllocatesDisjointTidBlocks) {
  SpcdService service(small_config());
  const RegisterResult a = service.register_tenant("alpha", 4);
  const RegisterResult b = service.register_tenant("beta", 8);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.tenant_id, 1u);
  EXPECT_EQ(b.tenant_id, 2u);
  EXPECT_EQ(a.base_tid, 0u);
  EXPECT_EQ(b.base_tid, 4u);
  EXPECT_EQ(service.registered_tenants(), 2u);
  EXPECT_EQ(service.active_tenants(), 2u);
}

TEST(SvcServiceTest, RegisterRejectsInvalidRequestsWithoutJournaling) {
  SpcdService service(small_config());
  EXPECT_FALSE(service.register_tenant("", 4).ok);
  EXPECT_FALSE(service.register_tenant("bad name", 4).ok);
  EXPECT_FALSE(service.register_tenant("zero-threads", 0).ok);
  EXPECT_FALSE(
      service.register_tenant("too-wide", kMaxTenantThreads + 1).ok);
  EXPECT_EQ(service.registered_tenants(), 0u);
  EXPECT_EQ(service.journal_records(), 0u);
}

TEST(SvcServiceTest, IngestDetectsIntraTenantCommunication) {
  SpcdService service(small_config());
  const std::uint32_t id = service.register_tenant("comm", 2).tenant_id;
  const IngestResult r = service.ingest(id, pair_batch(256));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.comm_events, 0u);
  EXPECT_EQ(service.total_events(), 256u);
}

TEST(SvcServiceTest, IngestRejectsBadBatchesWithoutSideEffects) {
  SpcdService service(small_config());
  const std::uint32_t id = service.register_tenant("strict", 2).tenant_id;

  EXPECT_FALSE(service.ingest(id + 7, pair_batch(1)).ok);  // unknown tenant
  EXPECT_FALSE(
      service.ingest(id, {{0x1000, /*tid=*/2, 1}}).ok);  // tid out of range
  EXPECT_FALSE(
      service
          .ingest(id, std::vector<FaultRecord>(kMaxBatchEvents + 1,
                                               FaultRecord{0x1000, 0, 1}))
          .ok);  // oversized

  ASSERT_TRUE(service.tenant_exit(id));
  EXPECT_FALSE(service.ingest(id, pair_batch(1)).ok);  // exited tenant
  EXPECT_EQ(service.total_events(), 0u);
}

TEST(SvcServiceTest, ExitIsJournaledOnceAndIdempotentlyRejected) {
  SpcdService service(small_config());
  const std::uint32_t id = service.register_tenant("leaver", 2).tenant_id;
  EXPECT_TRUE(service.tenant_exit(id));
  EXPECT_FALSE(service.tenant_exit(id));
  EXPECT_FALSE(service.tenant_exit(id + 1));
  EXPECT_EQ(service.active_tenants(), 0u);
  EXPECT_EQ(service.registered_tenants(), 1u);
}

TEST(SvcServiceTest, ArbitrationFiresOnIntervalBoundaries) {
  ServiceConfig config = small_config();
  config.arbitration_interval = 512;
  SpcdService service(config);
  const std::uint32_t id = service.register_tenant("cadence", 2).tenant_id;
  EXPECT_TRUE(service.decisions().empty());
  ASSERT_TRUE(service.ingest(id, pair_batch(511)).ok);
  EXPECT_EQ(service.decisions().size(), 0u);  // boundary not crossed yet
  ASSERT_TRUE(service.ingest(id, pair_batch(1)).ok);  // crosses 512
  EXPECT_EQ(service.decisions().size(), 1u);
  ASSERT_TRUE(service.ingest(id, pair_batch(1024)).ok);  // crosses 1024+1536
  EXPECT_EQ(service.decisions().size(), 2u);
}

TEST(SvcServiceTest, MetricsJsonCarriesTenantsAndInterference) {
  SpcdService service(small_config());
  const std::uint32_t id = service.register_tenant("metrics", 2).tenant_id;
  ASSERT_TRUE(service.ingest(id, pair_batch(100)).ok);
  const std::string json = service.metrics_json();
  EXPECT_NE(json.find("\"schema\":\"spcd-service-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"active\""), std::string::npos);
  EXPECT_NE(json.find("\"generation\":0"), std::string::npos);
  EXPECT_NE(json.find("\"lifecycle\""), std::string::npos);
  EXPECT_NE(json.find("\"total_events\":100"), std::string::npos);
  // Every descriptor-exported interference counter appears by name.
  for (const core::InterferenceDescriptor& d :
       core::interference_metric_descriptors()) {
    std::string needle = "\"";
    needle += d.name;
    needle += "\"";
    EXPECT_NE(json.find(needle), std::string::npos) << d.name;
  }
}

TEST(SvcServiceTest, JournaledSessionReplaysByteIdentically) {
  const std::string path = tmp_journal("svc_service_replay.journal");
  std::remove(path.c_str());

  ServiceConfig config = small_config();
  config.journal_path = path;
  config.arbitration_interval = 512;

  std::string live_decisions;
  std::string live_metrics;
  {
    SpcdService service(config);
    DriverConfig driver;
    driver.tenants = 3;
    driver.threads_per_tenant = 4;
    const std::uint32_t t1 =
        service.register_tenant("replay-a", 4).tenant_id;
    const std::uint32_t t2 =
        service.register_tenant("replay-b", 4).tenant_id;
    const std::uint32_t t3 =
        service.register_tenant("replay-c", 4).tenant_id;
    for (std::uint32_t batch = 0; batch < 6; ++batch) {
      ASSERT_TRUE(service.ingest(t1, scripted_batch(driver, 0, batch)).ok);
      ASSERT_TRUE(service.ingest(t2, scripted_batch(driver, 1, batch)).ok);
      if (batch < 3) {
        ASSERT_TRUE(
            service.ingest(t3, scripted_batch(driver, 2, batch)).ok);
      }
    }
    ASSERT_TRUE(service.tenant_exit(t3));
    ASSERT_TRUE(service.ingest(t1, scripted_batch(driver, 0, 6)).ok);
    ASSERT_FALSE(service.decisions().empty());
    live_decisions = service.decisions_text();
    live_metrics = service.metrics_json();
  }

  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  ASSERT_NE(replayed.service, nullptr);
  EXPECT_GT(replayed.records_applied, 0u);
  EXPECT_GT(replayed.decisions_checked, 0u);
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  EXPECT_FALSE(replayed.torn_tail);
  // The whole decision stream and the metrics snapshot — not just the
  // digests — must come back byte for byte.
  EXPECT_EQ(replayed.service->decisions_text(), live_decisions);
  EXPECT_EQ(replayed.service->metrics_json(), live_metrics);
  std::remove(path.c_str());
}

TEST(SvcServiceTest, ReplayToleratesTornTail) {
  const std::string path = tmp_journal("svc_service_torn.journal");
  std::remove(path.c_str());
  ServiceConfig config = small_config();
  config.journal_path = path;
  {
    SpcdService service(config);
    const std::uint32_t id = service.register_tenant("torn", 2).tenant_id;
    ASSERT_TRUE(service.ingest(id, pair_batch(64)).ok);
  }
  // Simulate a crash mid-append: chop bytes off the last record.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_GT(size, 8);
    ASSERT_EQ(::ftruncate(fileno(f), size - 5), 0);
    std::fclose(f);
  }
  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;  // prefix still replays
  EXPECT_TRUE(replayed.torn_tail);
  ASSERT_NE(replayed.service, nullptr);
  EXPECT_EQ(replayed.service->registered_tenants(), 1u);
  std::remove(path.c_str());
}

TEST(SvcServiceTest, ReplayFailsOnMissingJournal) {
  const SpcdService::ReplayResult replayed =
      SpcdService::replay(tmp_journal("svc_service_missing.journal"));
  EXPECT_FALSE(replayed.ok);
  EXPECT_FALSE(replayed.error.empty());
}

}  // namespace
}  // namespace spcd::svc
