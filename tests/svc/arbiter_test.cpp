// Placement arbiter: deterministic decisions over the active-tenant set,
// honest interference accounting (stolen contexts, shared cores, socket
// splits), and placement stability across consecutive decisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "svc/arbiter.hpp"
#include "svc/tenant.hpp"

namespace spcd::svc {
namespace {

arch::Topology small_topology() {
  // 2 sockets x 8 cores x 2 SMT = 32 contexts.
  return arch::Topology(arch::TopologySpec{2, 8, 2});
}

TenantRegistry make_registry(std::uint32_t tenants,
                             std::uint32_t threads_each) {
  TenantRegistry reg;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    std::string name = "t";
    name += std::to_string(t);
    reg.add(name, threads_each);
  }
  return reg;
}

TEST(SvcArbiterTest, SingleFittingTenantHasNoInterference) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(1, 8);
  PlacementArbiter arbiter(topo);
  const ArbiterDecision d = arbiter.decide(reg.participating(), 100);
  EXPECT_EQ(d.seq, 1u);
  EXPECT_EQ(d.event_time, 100u);
  ASSERT_EQ(d.placements.size(), 1u);
  EXPECT_EQ(d.placements[0].contexts.size(), 8u);
  EXPECT_EQ(d.contexts_stolen, 0u);
  EXPECT_EQ(d.cross_tenant_cores, 0u);
}

TEST(SvcArbiterTest, PlacementsCoverEveryThreadOfEveryTenant) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(5, 5);
  PlacementArbiter arbiter(topo);
  const ArbiterDecision d = arbiter.decide(reg.participating(), 1);
  ASSERT_EQ(d.placements.size(), 5u);
  for (const TenantPlacement& p : d.placements) {
    EXPECT_EQ(p.contexts.size(), 5u);
    for (const arch::ContextId ctx : p.contexts) {
      EXPECT_LT(ctx, topo.num_contexts());
    }
  }
}

TEST(SvcArbiterTest, OvercommitStealsContexts) {
  arch::Topology topo = small_topology();  // 32 contexts
  TenantRegistry reg = make_registry(8, 8);  // 64 threads
  PlacementArbiter arbiter(topo);
  const ArbiterDecision d = arbiter.decide(reg.participating(), 1);
  // Every context hosts two threads of different tenants in the steady
  // round-robin overflow, so each counts as stolen at least once.
  EXPECT_GT(d.contexts_stolen, 0u);
  EXPECT_GT(d.cross_tenant_cores, 0u);
}

TEST(SvcArbiterTest, FittingTenantsDoNotShareCores) {
  arch::Topology topo = small_topology();
  // 2 tenants x 8 threads on 16 cores: the mapper packs each tenant's
  // block, and no core need host two tenants.
  TenantRegistry reg = make_registry(2, 8);
  PlacementArbiter arbiter(topo);
  const ArbiterDecision d = arbiter.decide(reg.participating(), 1);
  EXPECT_EQ(d.contexts_stolen, 0u);
}

TEST(SvcArbiterTest, DecisionsAreDeterministic) {
  arch::Topology topo_a = small_topology();
  arch::Topology topo_b = small_topology();
  TenantRegistry reg_a = make_registry(4, 6);
  TenantRegistry reg_b = make_registry(4, 6);
  // Identical communication: adjacent-pair traffic inside each tenant.
  for (TenantRegistry* reg : {&reg_a, &reg_b}) {
    for (std::uint32_t id = 1; id <= 4; ++id) {
      Tenant* tenant = reg->find(id);
      for (std::uint32_t t = 0; t + 1 < tenant->num_threads; t += 2) {
        tenant->matrix.add(t, t + 1, 100 + id);
      }
    }
  }
  PlacementArbiter arb_a(topo_a);
  PlacementArbiter arb_b(topo_b);
  for (std::uint32_t round = 0; round < 3; ++round) {
    const ArbiterDecision da =
        arb_a.decide(reg_a.participating(), 1000u * (round + 1));
    const ArbiterDecision db =
        arb_b.decide(reg_b.participating(), 1000u * (round + 1));
    EXPECT_EQ(da.digest, db.digest) << "round " << round;
    EXPECT_EQ(decision_digest(da), da.digest);
  }
}

TEST(SvcArbiterTest, DigestCoversPlacements) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(2, 4);
  PlacementArbiter arbiter(topo);
  ArbiterDecision d = arbiter.decide(reg.participating(), 1);
  const std::uint64_t original = d.digest;
  d.placements[0].contexts[0] ^= 1;
  EXPECT_NE(decision_digest(d), original);
}

TEST(SvcArbiterTest, StablePlacementAcrossIdenticalRounds) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(3, 4);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    Tenant* tenant = reg.find(id);
    tenant->matrix.add(0, 1, 500);
    tenant->matrix.add(2, 3, 500);
  }
  PlacementArbiter arbiter(topo);
  const ArbiterDecision first = arbiter.decide(reg.participating(), 1);
  EXPECT_EQ(first.moved, 0u);  // no previous decision: nothing to move from
  const ArbiterDecision second = arbiter.decide(reg.participating(), 2);
  // Nothing changed between rounds: the previous placement seeds the
  // mapper, so the decision repeats and no thread migrates.
  EXPECT_EQ(second.moved, 0u);
  ASSERT_EQ(first.placements.size(), second.placements.size());
  for (std::size_t i = 0; i < first.placements.size(); ++i) {
    EXPECT_EQ(first.placements[i].contexts, second.placements[i].contexts);
  }
}

TEST(SvcArbiterTest, ExitedTenantFreesItsSlots) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(8, 8);  // overcommitted
  PlacementArbiter arbiter(topo);
  const ArbiterDecision crowded = arbiter.decide(reg.participating(), 1);
  EXPECT_GT(crowded.contexts_stolen, 0u);
  for (std::uint32_t id = 5; id <= 8; ++id) reg.mark_exited(id);
  const ArbiterDecision relaxed = arbiter.decide(reg.participating(), 2);
  ASSERT_EQ(relaxed.placements.size(), 4u);  // 32 threads on 32 contexts
  EXPECT_EQ(relaxed.contexts_stolen, 0u);
}

TEST(SvcArbiterTest, SequenceNumbersAreMonotonic) {
  arch::Topology topo = small_topology();
  TenantRegistry reg = make_registry(1, 2);
  PlacementArbiter arbiter(topo);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(arbiter.decide(reg.participating(), i).seq, i);
  }
  EXPECT_EQ(arbiter.decisions(), 5u);
}

}  // namespace
}  // namespace spcd::svc
