// Wire-protocol contract: every message round-trips encode -> parse, and
// every malformed payload — truncated, oversized, trailing bytes, bogus
// type — yields nullopt, never UB (the daemon parses attacker-controlled
// bytes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace spcd::svc {
namespace {

TEST(SvcProtocolTest, TenantNameValidation) {
  EXPECT_TRUE(valid_tenant_name("app-0"));
  EXPECT_TRUE(valid_tenant_name("A.b_c-9"));
  EXPECT_TRUE(valid_tenant_name(std::string(kMaxTenantName, 'x')));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name(std::string(kMaxTenantName + 1, 'x')));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("new\nline"));
  EXPECT_FALSE(valid_tenant_name(std::string("nul\0byte", 8)));
}

TEST(SvcProtocolTest, HelloRoundTrip) {
  const auto msg = parse_message(encode_hello("tenant-7", 12));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kHello);
  EXPECT_EQ(msg->name, "tenant-7");
  EXPECT_EQ(msg->num_threads, 12u);
}

TEST(SvcProtocolTest, WelcomeRoundTripCarriesVersion) {
  const auto msg = parse_message(encode_welcome(3, 40));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kWelcome);
  EXPECT_EQ(msg->tenant_id, 3u);
  EXPECT_EQ(msg->base_tid, 40u);
  EXPECT_EQ(msg->version, kProtocolVersion);
}

TEST(SvcProtocolTest, FaultBatchRoundTrip) {
  std::vector<FaultRecord> events;
  for (std::uint32_t i = 0; i < 100; ++i) {
    events.push_back({0x1000u * i + 0xabcdef0123ULL, i % 8, 77u + i});
  }
  const auto msg = parse_message(encode_fault_batch(events));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kFaultBatch);
  EXPECT_EQ(msg->events, events);
}

TEST(SvcProtocolTest, EmptyFaultBatchRoundTrip) {
  const auto msg = parse_message(encode_fault_batch({}));
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->events.empty());
}

TEST(SvcProtocolTest, BatchAckRoundTrip) {
  const auto msg = parse_message(encode_batch_ack(0x1122334455667788ULL, 9));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kBatchAck);
  EXPECT_EQ(msg->seq, 0x1122334455667788ULL);
  EXPECT_EQ(msg->comm_events, 9u);
}

TEST(SvcProtocolTest, SmallMessagesRoundTrip) {
  EXPECT_EQ(parse_message(encode_bye())->type, MessageType::kBye);
  EXPECT_EQ(parse_message(encode_stats())->type, MessageType::kStats);
  EXPECT_EQ(parse_message(encode_shutdown())->type, MessageType::kShutdown);
  const auto reply = parse_message(encode_stats_reply("{\"a\":1}"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kStatsReply);
  EXPECT_EQ(reply->text, "{\"a\":1}");
  const auto err = parse_message(encode_error("bad tenant"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, MessageType::kError);
  EXPECT_EQ(err->text, "bad tenant");
}

TEST(SvcProtocolTest, RejectsEmptyAndUnknownType) {
  EXPECT_FALSE(parse_message("").has_value());
  EXPECT_FALSE(parse_message(std::string(1, '\x00')).has_value());
  EXPECT_FALSE(parse_message(std::string(1, '\x7f')).has_value());
}

TEST(SvcProtocolTest, RejectsTruncation) {
  // Every proper prefix of a valid payload must fail to parse (except the
  // degenerate empty prefix, covered above).
  for (const std::string& payload :
       {encode_hello("t", 4), encode_welcome(1, 0),
        encode_fault_batch({{0x1000, 0, 1}}), encode_batch_ack(5, 1),
        encode_stats_reply("{}"), encode_error("x")}) {
    for (std::size_t len = 1; len < payload.size(); ++len) {
      EXPECT_FALSE(parse_message(payload.substr(0, len)).has_value())
          << "prefix of length " << len << " parsed";
    }
  }
}

TEST(SvcProtocolTest, RejectsTrailingBytes) {
  for (std::string payload :
       {encode_hello("t", 4), encode_fault_batch({{0x1000, 0, 1}}),
        encode_bye(), encode_batch_ack(5, 1)}) {
    payload.push_back('\x00');
    EXPECT_FALSE(parse_message(payload).has_value());
  }
}

TEST(SvcProtocolTest, RejectsOversizedDeclaredCounts) {
  // A fault batch declaring more events than the payload carries (or than
  // the cap allows) must not be trusted.
  std::string payload = encode_fault_batch({{0x1000, 0, 1}});
  payload[1] = '\xff';  // count LSB: declares 255+ events, carries one
  EXPECT_FALSE(parse_message(payload).has_value());

  std::string hello = encode_hello("ab", 1);
  // name_len is the u16 after type + u32 num_threads.
  hello[5] = '\x40';
  hello[6] = '\x00';  // declares 64 name bytes, carries 2
  EXPECT_FALSE(parse_message(hello).has_value());
}

TEST(SvcProtocolTest, BatchEventCapIsEnforced) {
  const std::vector<FaultRecord> max_events(kMaxBatchEvents,
                                            FaultRecord{0x1000, 0, 1});
  const std::string ok = encode_fault_batch(max_events);
  EXPECT_LE(ok.size() + 4, kMaxFrameBytes);
  ASSERT_TRUE(parse_message(ok).has_value());
}

}  // namespace
}  // namespace spcd::svc
