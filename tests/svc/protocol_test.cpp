// Wire-protocol contract: every message round-trips encode -> parse, and
// every malformed payload — truncated, oversized, trailing bytes, bogus
// type — yields nullopt, never UB (the daemon parses attacker-controlled
// bytes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace spcd::svc {
namespace {

TEST(SvcProtocolTest, TenantNameValidation) {
  EXPECT_TRUE(valid_tenant_name("app-0"));
  EXPECT_TRUE(valid_tenant_name("A.b_c-9"));
  EXPECT_TRUE(valid_tenant_name(std::string(kMaxTenantName, 'x')));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name(std::string(kMaxTenantName + 1, 'x')));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("new\nline"));
  EXPECT_FALSE(valid_tenant_name(std::string("nul\0byte", 8)));
}

TEST(SvcProtocolTest, HelloRoundTrip) {
  const auto msg = parse_message(encode_hello("tenant-7", 12));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kHello);
  EXPECT_EQ(msg->name, "tenant-7");
  EXPECT_EQ(msg->num_threads, 12u);
}

TEST(SvcProtocolTest, WelcomeRoundTripCarriesVersion) {
  const auto msg = parse_message(encode_welcome(3, 40));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kWelcome);
  EXPECT_EQ(msg->tenant_id, 3u);
  EXPECT_EQ(msg->base_tid, 40u);
  EXPECT_EQ(msg->version, kProtocolVersion);
}

TEST(SvcProtocolTest, FaultBatchRoundTrip) {
  std::vector<FaultRecord> events;
  for (std::uint32_t i = 0; i < 100; ++i) {
    events.push_back({0x1000u * i + 0xabcdef0123ULL, i % 8, 77u + i});
  }
  const auto msg = parse_message(encode_fault_batch(7, events));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kFaultBatch);
  EXPECT_EQ(msg->client_seq, 7u);
  EXPECT_EQ(msg->events, events);
}

TEST(SvcProtocolTest, EmptyFaultBatchRoundTrip) {
  const auto msg = parse_message(encode_fault_batch(0, {}));
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->events.empty());
}

TEST(SvcProtocolTest, BatchAckRoundTrip) {
  const auto msg =
      parse_message(encode_batch_ack(3, 0x1122334455667788ULL, 9));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kBatchAck);
  EXPECT_EQ(msg->client_seq, 3u);
  EXPECT_EQ(msg->seq, 0x1122334455667788ULL);
  EXPECT_EQ(msg->comm_events, 9u);
}

TEST(SvcProtocolTest, LifecycleMessagesRoundTrip) {
  const auto rereg = parse_message(encode_reregister(21, 8));
  ASSERT_TRUE(rereg.has_value());
  EXPECT_EQ(rereg->type, MessageType::kReRegister);
  EXPECT_EQ(rereg->client_seq, 21u);
  EXPECT_EQ(rereg->num_threads, 8u);

  const auto hb = parse_message(encode_heartbeat(17));
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->type, MessageType::kHeartbeat);
  EXPECT_EQ(hb->seq, 17u);

  const auto ack = parse_message(encode_heartbeat_ack(0xdeadbeefULL));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, MessageType::kHeartbeatAck);
  EXPECT_EQ(ack->seq, 0xdeadbeefULL);

  const auto resume = parse_message(encode_resume(5, "tenant-5"));
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->type, MessageType::kResume);
  EXPECT_EQ(resume->tenant_id, 5u);
  EXPECT_EQ(resume->name, "tenant-5");

  const auto retry = parse_message(encode_retry(9, 25));
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->type, MessageType::kRetry);
  EXPECT_EQ(retry->client_seq, 9u);
  EXPECT_EQ(retry->delay_ms, 25u);
}

TEST(SvcProtocolTest, ResumeRejectsInvalidName) {
  EXPECT_FALSE(parse_message(encode_resume(1, "bad name")).has_value());
}

TEST(SvcProtocolTest, SmallMessagesRoundTrip) {
  EXPECT_EQ(parse_message(encode_bye())->type, MessageType::kBye);
  EXPECT_EQ(parse_message(encode_stats())->type, MessageType::kStats);
  EXPECT_EQ(parse_message(encode_shutdown())->type, MessageType::kShutdown);
  const auto reply = parse_message(encode_stats_reply("{\"a\":1}"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kStatsReply);
  EXPECT_EQ(reply->text, "{\"a\":1}");
  const auto err = parse_message(encode_error("bad tenant"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->type, MessageType::kError);
  EXPECT_EQ(err->text, "bad tenant");
}

TEST(SvcProtocolTest, RejectsEmptyAndUnknownType) {
  EXPECT_FALSE(parse_message("").has_value());
  EXPECT_FALSE(parse_message(std::string(1, '\x00')).has_value());
  EXPECT_FALSE(parse_message(std::string(1, '\x7f')).has_value());
}

TEST(SvcProtocolTest, RejectsTruncation) {
  // Every proper prefix of a valid payload must fail to parse (except the
  // degenerate empty prefix, covered above).
  for (const std::string& payload :
       {encode_hello("t", 4), encode_welcome(1, 0),
        encode_fault_batch(1, {{0x1000, 0, 1}}), encode_batch_ack(1, 5, 1),
        encode_stats_reply("{}"), encode_error("x"),
        encode_reregister(2, 8), encode_heartbeat(3),
        encode_heartbeat_ack(4), encode_resume(5, "t"),
        encode_retry(6, 10)}) {
    for (std::size_t len = 1; len < payload.size(); ++len) {
      EXPECT_FALSE(parse_message(payload.substr(0, len)).has_value())
          << "prefix of length " << len << " parsed";
    }
  }
}

TEST(SvcProtocolTest, RejectsTrailingBytes) {
  for (std::string payload :
       {encode_hello("t", 4), encode_fault_batch(1, {{0x1000, 0, 1}}),
        encode_bye(), encode_batch_ack(1, 5, 1), encode_reregister(2, 8),
        encode_heartbeat(3), encode_heartbeat_ack(4),
        encode_resume(5, "t"), encode_retry(6, 10)}) {
    payload.push_back('\x00');
    EXPECT_FALSE(parse_message(payload).has_value());
  }
}

TEST(SvcProtocolTest, RejectsOversizedDeclaredCounts) {
  // A fault batch declaring more events than the payload carries (or than
  // the cap allows) must not be trusted. The v2 layout puts the u32 count
  // after the type byte and the u64 client_seq.
  std::string payload = encode_fault_batch(1, {{0x1000, 0, 1}});
  payload[9] = '\xff';  // count LSB: declares 255+ events, carries one
  EXPECT_FALSE(parse_message(payload).has_value());

  std::string hello = encode_hello("ab", 1);
  // name_len is the u16 after type + u32 num_threads.
  hello[5] = '\x40';
  hello[6] = '\x00';  // declares 64 name bytes, carries 2
  EXPECT_FALSE(parse_message(hello).has_value());
}

TEST(SvcProtocolTest, BatchEventCapIsEnforced) {
  const std::vector<FaultRecord> max_events(kMaxBatchEvents,
                                            FaultRecord{0x1000, 0, 1});
  const std::string ok = encode_fault_batch(1, max_events);
  EXPECT_LE(ok.size() + 4, kMaxFrameBytes);
  ASSERT_TRUE(parse_message(ok).has_value());
}

}  // namespace
}  // namespace spcd::svc
