// Journal rotation: a size/record threshold closes the live journal into
// a generation file ("<path>.g<N>") and opens the next generation with a
// head snapshot, replay follows the whole chain (or seeds itself from
// the oldest retained snapshot when early generations were pruned), the
// torn-tail tolerance applies only to the live file, and a rotated
// session still replays byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "svc/driver.hpp"
#include "svc/service.hpp"

namespace spcd::svc {
namespace {

std::string tmp_journal(const char* name) { return testing::TempDir() + name; }

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

void remove_chain(const std::string& path) {
  std::remove(path.c_str());
  for (std::uint32_t g = 0; g < 64; ++g) {
    std::remove((path + ".g" + std::to_string(g)).c_str());
  }
}

ServiceConfig rotating_config(const std::string& path) {
  ServiceConfig config;
  config.arbitration_interval = 512;
  config.journal_path = path;
  config.journal_max_records = 24;
  return config;
}

/// Run a fixed scripted session (3 tenants, `batches` batches each, one
/// exit) against `service`; returns {metrics, decisions} when done.
std::pair<std::string, std::string> run_session(SpcdService& service,
                                                std::uint32_t batches) {
  DriverConfig driver;
  driver.tenants = 3;
  driver.threads_per_tenant = 4;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t t = 0; t < 3; ++t) {
    const RegisterResult r =
        service.register_tenant("rot-" + std::to_string(t), 4);
    EXPECT_TRUE(r.ok) << r.error;
    ids.push_back(r.tenant_id);
  }
  for (std::uint32_t batch = 0; batch < batches; ++batch) {
    for (std::uint32_t t = 0; t < 3; ++t) {
      EXPECT_TRUE(service.ingest(ids[t], scripted_batch(driver, t, batch)).ok);
    }
  }
  EXPECT_TRUE(service.tenant_exit(ids[2]));
  return {service.metrics_json(), service.decisions_text()};
}

TEST(SvcRotationTest, RecordThresholdRotatesAndReplaySpansGenerations) {
  const std::string path = tmp_journal("svc_rotation_chain.journal");
  remove_chain(path);

  std::string live_metrics;
  std::string live_decisions;
  std::uint32_t live_gen = 0;
  {
    SpcdService service(rotating_config(path));
    std::tie(live_metrics, live_decisions) = run_session(service, 24);
    live_gen = service.generation();
  }
  // 3 registers + 72 batches + 1 exit + transitions cross the 24-record
  // threshold several times over.
  ASSERT_GE(live_gen, 2u);
  for (std::uint32_t g = 0; g < live_gen; ++g) {
    EXPECT_TRUE(file_exists(path + ".g" + std::to_string(g)))
        << "generation " << g << " missing";
  }

  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.generations_replayed, live_gen + 1);
  EXPECT_FALSE(replayed.restored_from_snapshot);  // g0 still on disk
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  EXPECT_EQ(replayed.service->generation(), live_gen);
  EXPECT_EQ(replayed.service->metrics_json(), live_metrics);
  EXPECT_EQ(replayed.service->decisions_text(), live_decisions);
  remove_chain(path);
}

TEST(SvcRotationTest, ByteThresholdRotatesToo) {
  const std::string path = tmp_journal("svc_rotation_bytes.journal");
  remove_chain(path);
  ServiceConfig config;
  config.arbitration_interval = 512;
  config.journal_path = path;
  config.journal_max_bytes = 64 * 1024;
  {
    SpcdService service(config);
    run_session(service, 16);
    EXPECT_GE(service.generation(), 1u);
  }
  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  remove_chain(path);
}

TEST(SvcRotationTest, PrunedPrefixReplaysFromTheRetainedSnapshot) {
  const std::string path = tmp_journal("svc_rotation_pruned.journal");
  remove_chain(path);

  ServiceConfig config = rotating_config(path);
  config.journal_keep_generations = 1;
  std::string live_metrics;
  std::string live_decisions;
  std::uint32_t live_gen = 0;
  {
    SpcdService service(config);
    std::tie(live_metrics, live_decisions) = run_session(service, 24);
    live_gen = service.generation();
  }
  ASSERT_GE(live_gen, 2u);
  // Only the newest rotated generation is retained.
  EXPECT_FALSE(file_exists(path + ".g0"));
  EXPECT_TRUE(file_exists(path + ".g" + std::to_string(live_gen - 1)));

  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_TRUE(replayed.restored_from_snapshot);
  EXPECT_EQ(replayed.generations_replayed, 2u);  // newest rotated + live
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  EXPECT_EQ(replayed.service->metrics_json(), live_metrics);
  // After a snapshot restore decisions_text() holds the decisions since
  // the snapshot — a byte-exact suffix of the live stream (seq
  // numbering continues the original).
  const std::string tail = replayed.service->decisions_text();
  ASSERT_LE(tail.size(), live_decisions.size());
  EXPECT_EQ(live_decisions.substr(live_decisions.size() - tail.size()),
            tail);
  remove_chain(path);
}

TEST(SvcRotationTest, TornTailToleratedOnLiveFileOnly) {
  const std::string path = tmp_journal("svc_rotation_torn.journal");
  remove_chain(path);
  std::string live_metrics;
  {
    SpcdService service(rotating_config(path));
    live_metrics = run_session(service, 24).first;
    ASSERT_GE(service.generation(), 2u);
  }

  // Garbage after the last intact record of the LIVE file models a crash
  // mid-append: replay shrugs it off (torn_tail reported).
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "#rec 9999 deadbeefdeadbeef\nshort";
  }
  const SpcdService::ReplayResult tolerant = SpcdService::replay(path);
  ASSERT_TRUE(tolerant.ok) << tolerant.error;
  EXPECT_TRUE(tolerant.torn_tail);
  EXPECT_EQ(tolerant.service->metrics_json(), live_metrics);

  // The same garbage on a ROTATED generation is data loss, not a crash
  // artifact — rotated files were closed cleanly — so replay refuses.
  {
    std::ofstream out(path + ".g0", std::ios::app | std::ios::binary);
    out << "#rec 9999 deadbeefdeadbeef\nshort";
  }
  const SpcdService::ReplayResult refused = SpcdService::replay(path);
  EXPECT_FALSE(refused.ok);
  EXPECT_FALSE(refused.error.empty());
  remove_chain(path);
}

TEST(SvcRotationTest, MissingMiddleGenerationIsFatal) {
  const std::string path = tmp_journal("svc_rotation_gap.journal");
  remove_chain(path);
  {
    SpcdService service(rotating_config(path));
    run_session(service, 24);
    ASSERT_GE(service.generation(), 2u);
  }
  // Deleting a middle generation leaves a gap the chain cannot bridge
  // (unlike pruning, which always removes the OLDEST prefix).
  ASSERT_EQ(std::remove((path + ".g1").c_str()), 0);
  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  EXPECT_FALSE(replayed.ok);
  EXPECT_FALSE(replayed.error.empty());
  remove_chain(path);
}

}  // namespace
}  // namespace spcd::svc
