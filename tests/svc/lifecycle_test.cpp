// Tenant lifecycle: re-register keeps the accumulated communication
// signal while moving the tenant to a fresh tid block, liveness sweeps
// walk registered/active -> suspect -> reaped off journaled transitions
// only (wall clock never enters the journal), a reap hands the reaped
// tenant's contexts back to the arbiter, and the whole story — including
// an overcommitted fleet losing half its tenants — replays byte for
// byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "svc/driver.hpp"
#include "svc/service.hpp"

namespace spcd::svc {
namespace {

std::string tmp_journal(const char* name) { return testing::TempDir() + name; }

ServiceConfig lively_config() {
  ServiceConfig config;
  config.arbitration_interval = 1024;
  config.heartbeat_ms = 100;
  config.reap_factor = 3;
  return config;
}

std::vector<FaultRecord> pair_batch(std::uint32_t events) {
  std::vector<FaultRecord> batch;
  batch.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    batch.push_back({((i / 2) % 16) << 12, i % 2, i + 1});
  }
  return batch;
}

TEST(SvcLifecycleTest, ReRegisterMovesToFreshTidBlockKeepingIdentity) {
  SpcdService service(lively_config());
  const RegisterResult first = service.register_tenant("resize", 4);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(service.ingest(first.tenant_id, pair_batch(512)).ok);

  const RegisterResult wider = service.re_register(first.tenant_id, 8);
  ASSERT_TRUE(wider.ok);
  EXPECT_EQ(wider.tenant_id, first.tenant_id);
  EXPECT_NE(wider.base_tid, first.base_tid);  // fresh block
  EXPECT_EQ(service.registered_tenants(), 1u);
  EXPECT_EQ(service.lifecycle().reregisters, 1u);

  // The tenant keeps ingesting on the new width; old local tids beyond
  // the previous width now resolve.
  ASSERT_TRUE(service.ingest(first.tenant_id, {{0x5000, 7, 1}}).ok);
  EXPECT_EQ(service.total_events(), 513u);

  const ArbiterDecision decision = service.arbitrate_now();
  ASSERT_EQ(decision.placements.size(), 1u);
  EXPECT_EQ(decision.placements[0].contexts.size(), 8u);
}

TEST(SvcLifecycleTest, ReRegisterRejectsUnknownAndOutOfRange) {
  SpcdService service(lively_config());
  const std::uint32_t id = service.register_tenant("strict", 2).tenant_id;
  EXPECT_FALSE(service.re_register(id + 5, 4).ok);
  EXPECT_FALSE(service.re_register(id, 0).ok);
  EXPECT_FALSE(service.re_register(id, kMaxTenantThreads + 1).ok);
  ASSERT_TRUE(service.tenant_exit(id));
  EXPECT_FALSE(service.re_register(id, 4).ok);  // departed
  EXPECT_EQ(service.lifecycle().reregisters, 0u);
}

TEST(SvcLifecycleTest, SilentTenantIsSuspectedThenReapedOnDeadlines) {
  SpcdService service(lively_config());  // suspect > 100ms, reap > 300ms
  const std::uint32_t quiet = service.register_tenant("quiet", 2).tenant_id;
  const std::uint32_t chatty = service.register_tenant("chatty", 2).tenant_id;
  ASSERT_TRUE(service.ingest(quiet, pair_batch(64)).ok);
  ASSERT_TRUE(service.ingest(chatty, pair_batch(64)).ok);
  service.touch(quiet, 1000);
  service.touch(chatty, 1000);

  // Inside the deadline: nothing happens.
  SpcdService::LivenessReport report = service.check_liveness(1100);
  EXPECT_EQ(report.suspected, 0u);
  EXPECT_EQ(report.reaped, 0u);

  // Past heartbeat_ms: quiet is suspected (chatty keeps talking).
  service.touch(chatty, 1150);
  report = service.check_liveness(1150);
  EXPECT_EQ(report.suspected, 1u);
  EXPECT_EQ(report.reaped, 0u);
  EXPECT_EQ(service.lifecycle().suspects, 1u);
  // A suspect still participates: its contexts are not reclaimed yet.
  EXPECT_EQ(service.active_tenants(), 2u);

  // Past heartbeat_ms * reap_factor: quiet is reaped, its contexts go
  // back to the arbiter (the sweep arbitrates immediately).
  service.touch(chatty, 1350);
  const std::size_t decisions_before = service.decisions().size();
  report = service.check_liveness(1350);
  EXPECT_EQ(report.suspected, 0u);
  EXPECT_EQ(report.reaped, 1u);
  EXPECT_EQ(service.lifecycle().reaps, 1u);
  EXPECT_EQ(service.active_tenants(), 1u);
  const std::vector<ArbiterDecision> decisions = service.decisions();
  ASSERT_EQ(decisions.size(), decisions_before + 1);
  const ArbiterDecision& reclaim = decisions.back();
  ASSERT_EQ(reclaim.placements.size(), 1u);  // only chatty is placed
  EXPECT_EQ(reclaim.placements[0].tenant_id, chatty);

  // A reaped tenant is gone for good: no ingest, no resurrection.
  EXPECT_FALSE(service.ingest(quiet, pair_batch(1)).ok);
  EXPECT_FALSE(service.re_register(quiet, 2).ok);
}

TEST(SvcLifecycleTest, HeartbeatAndBatchesReactivateASuspect) {
  SpcdService service(lively_config());
  const std::uint32_t a = service.register_tenant("hb", 2).tenant_id;
  const std::uint32_t b = service.register_tenant("batcher", 2).tenant_id;
  ASSERT_TRUE(service.ingest(a, pair_batch(8)).ok);
  ASSERT_TRUE(service.ingest(b, pair_batch(8)).ok);
  service.touch(a, 1000);
  service.touch(b, 1000);
  ASSERT_EQ(service.check_liveness(1200).suspected, 2u);

  // A heartbeat reactivates (journaled transition, counted).
  std::uint64_t commit_seq = 0;
  EXPECT_TRUE(service.heartbeat_seen(a, 1200, &commit_seq));
  EXPECT_GT(commit_seq, 0u);
  // A fault batch reactivates implicitly (the batch record implies it).
  service.touch(b, 1200);
  ASSERT_TRUE(service.ingest(b, pair_batch(8)).ok);
  EXPECT_EQ(service.lifecycle().reactivations, 2u);

  // Both survived: the next sweep inside the deadline reaps nobody.
  EXPECT_EQ(service.check_liveness(1250).reaped, 0u);
  EXPECT_EQ(service.active_tenants(), 2u);

  // Heartbeats from unknown or reaped tenants are refused.
  EXPECT_FALSE(service.heartbeat_seen(a + 99, 1250, &commit_seq));
}

TEST(SvcLifecycleTest, ResumeReattachesOnlyWithMatchingIdentity) {
  SpcdService service(lively_config());
  const std::uint32_t id = service.register_tenant("comeback", 2).tenant_id;
  ASSERT_TRUE(service.ingest(id, pair_batch(8)).ok);
  service.touch(id, 1000);
  ASSERT_EQ(service.check_liveness(1200).suspected, 1u);

  EXPECT_FALSE(service.resume_tenant(id, "impostor", 1200).ok);
  EXPECT_FALSE(service.resume_tenant(id + 3, "comeback", 1200).ok);
  const RegisterResult resumed = service.resume_tenant(id, "comeback", 1200);
  ASSERT_TRUE(resumed.ok);
  EXPECT_EQ(resumed.tenant_id, id);
  EXPECT_EQ(service.lifecycle().reactivations, 1u);

  ASSERT_TRUE(service.tenant_exit(id));
  EXPECT_FALSE(service.resume_tenant(id, "comeback", 1300).ok);
}

// Satellite: an overcommitted daemon loses half its fleet to the reaper;
// the arbiter reclaims the contexts for the survivors, and the journaled
// lifecycle replays byte-identically with zero digest divergence.
TEST(SvcLifecycleTest, ReapedFleetReplaysByteIdentically) {
  const std::string path = tmp_journal("svc_lifecycle_replay.journal");
  std::remove(path.c_str());

  ServiceConfig config = lively_config();
  config.journal_path = path;
  config.arbitration_interval = 512;
  config.topology = {/*sockets=*/1, /*cores_per_socket=*/4,
                     /*smt_per_core=*/2};  // 8 contexts

  std::string live_metrics;
  std::string live_decisions;
  {
    SpcdService service(config);
    DriverConfig driver;
    driver.tenants = 6;
    driver.threads_per_tenant = 4;
    // 6 tenants x 4 threads overcommits the default topology (16
    // contexts): the arbiter is forced to double tenants up until the
    // reaper frees room.
    ASSERT_GT(6u * 4u, service.topology().num_contexts());
    std::vector<std::uint32_t> ids;
    for (std::uint32_t t = 0; t < 6; ++t) {
      const RegisterResult r =
          service.register_tenant("fleet-" + std::to_string(t), 4);
      ASSERT_TRUE(r.ok) << r.error;
      ids.push_back(r.tenant_id);
    }
    for (std::uint32_t batch = 0; batch < 4; ++batch) {
      for (std::uint32_t t = 0; t < 6; ++t) {
        ASSERT_TRUE(
            service.ingest(ids[t], scripted_batch(driver, t, batch)).ok);
        service.touch(ids[t], 1000);
      }
    }
    // Half the fleet goes silent (SIGKILLed clients); the sweeps first
    // suspect them, then reap them and rearbitrate.
    for (std::uint32_t t = 0; t < 3; ++t) service.touch(ids[t], 1400);
    EXPECT_EQ(service.check_liveness(1400).suspected, 3u);
    for (std::uint32_t t = 0; t < 3; ++t) service.touch(ids[t], 1700);
    EXPECT_EQ(service.check_liveness(1700).reaped, 3u);
    EXPECT_EQ(service.active_tenants(), 3u);

    // Survivors keep working in the reclaimed space.
    for (std::uint32_t batch = 4; batch < 8; ++batch) {
      for (std::uint32_t t = 0; t < 3; ++t) {
        ASSERT_TRUE(
            service.ingest(ids[t], scripted_batch(driver, t, batch)).ok);
      }
    }
    const ArbiterDecision after = service.arbitrate_now();
    EXPECT_EQ(after.placements.size(), 3u);
    live_metrics = service.metrics_json();
    live_decisions = service.decisions_text();
  }

  const SpcdService::ReplayResult replayed = SpcdService::replay(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.digest_mismatches, 0u);
  EXPECT_GT(replayed.decisions_checked, 0u);
  EXPECT_EQ(replayed.service->metrics_json(), live_metrics);
  EXPECT_EQ(replayed.service->decisions_text(), live_decisions);
  EXPECT_EQ(replayed.service->lifecycle().suspects, 3u);
  EXPECT_EQ(replayed.service->lifecycle().reaps, 3u);
  EXPECT_EQ(replayed.service->active_tenants(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spcd::svc
