// Sharded sharing table: tenant salting isolates address spaces, shard
// layout is a pure function of the region key, cross-tenant capacity
// evictions are counted, and concurrent recording from many threads is
// race-free (this test is in the TSan CI job's target list).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "svc/sharded_table.hpp"

namespace spcd::svc {
namespace {

TEST(SvcShardedTableTest, SameVaddrDifferentTenantsNeverCommunicate) {
  ShardedSharingTable table((ShardedTableConfig()));
  // Tenant 0 thread 0 and tenant 1 thread 5 touch the same vaddr; the
  // tenant salt keeps the regions distinct, so no partners ever appear.
  for (std::uint64_t now = 1; now <= 64; ++now) {
    const auto ev0 = table.record(0, 0x4000, 0, now);
    const auto ev1 = table.record(1, 0x4000, 5, now);
    EXPECT_EQ(ev0.partner_count, 0u);
    EXPECT_EQ(ev1.partner_count, 0u);
  }
  EXPECT_NE(table.region_key(0, 0x4000), table.region_key(1, 0x4000));
}

TEST(SvcShardedTableTest, SameTenantSharersArePartners) {
  ShardedSharingTable table((ShardedTableConfig()));
  table.record(2, 0x8000, 100, 1);
  const auto ev = table.record(2, 0x8000, 101, 2);
  ASSERT_EQ(ev.partner_count, 1u);
  EXPECT_EQ(ev.partners[0], 100u);  // partners carry global tids
}

TEST(SvcShardedTableTest, ShardOfIsStableAndInRange) {
  ShardedTableConfig config;
  config.shards = 8;
  ShardedSharingTable table(config);
  ASSERT_EQ(table.shards(), 8u);
  for (std::uint32_t tenant = 0; tenant < 4; ++tenant) {
    for (std::uint64_t page = 0; page < 256; ++page) {
      const std::uint64_t region = table.region_key(tenant, page << 12);
      const std::uint32_t shard = table.shard_of(region);
      EXPECT_LT(shard, 8u);
      EXPECT_EQ(shard, table.shard_of(region));  // pure function
    }
  }
}

TEST(SvcShardedTableTest, TenantOfRegionRecoversTheSalt) {
  ShardedSharingTable table((ShardedTableConfig()));
  const unsigned shift = table.config().table.granularity_shift;
  for (std::uint32_t tenant = 0; tenant < 7; ++tenant) {
    const std::uint64_t region = table.region_key(tenant, 0xabc000);
    EXPECT_EQ(ShardedSharingTable::tenant_of_region(region, shift), tenant);
  }
}

TEST(SvcShardedTableTest, CrossTenantEvictionsAreCounted) {
  // One shard, minimum capacity: two tenants hammering disjoint region
  // sets must steal entries from each other.
  ShardedTableConfig config;
  config.shards = 1;
  config.table.num_entries = 64;
  ShardedSharingTable table(config);
  for (std::uint64_t round = 0; round < 64; ++round) {
    for (std::uint64_t page = 0; page < 256; ++page) {
      table.record(0, page << 12, 0, round * 1024 + page);
      table.record(1, page << 12, 1, round * 1024 + page + 512);
    }
  }
  EXPECT_GT(table.cross_tenant_evictions(), 0u);
  EXPECT_GT(table.collisions(), 0u);
}

TEST(SvcShardedTableTest, ClearResetsStatistics) {
  ShardedSharingTable table((ShardedTableConfig()));
  table.record(0, 0x1000, 0, 1);
  table.record(0, 0x1000, 1, 2);
  EXPECT_GT(table.accesses(), 0u);
  EXPECT_GT(table.occupied(), 0u);
  table.clear();
  EXPECT_EQ(table.accesses(), 0u);
  EXPECT_EQ(table.occupied(), 0u);
  EXPECT_EQ(table.cross_tenant_evictions(), 0u);
}

TEST(SvcShardedTableTest, ConcurrentTenantsRecordRaceFree) {
  // 8 tenant threads, overlapping pages, small table — maximum contention
  // on both the shard locks and the eviction counter. TSan's target.
  ShardedTableConfig config;
  config.shards = 4;
  config.table.num_entries = 1024;
  ShardedSharingTable table(config);

  constexpr std::uint32_t kTenants = 8;
  constexpr std::uint64_t kOpsPerTenant = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (std::uint32_t tenant = 0; tenant < kTenants; ++tenant) {
    threads.emplace_back([&table, tenant] {
      std::uint64_t state = tenant * 0x9e3779b97f4a7c15ULL + 1;
      for (std::uint64_t i = 0; i < kOpsPerTenant; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const std::uint64_t vaddr = (state % 512) << 12;
        const auto tid =
            static_cast<std::uint32_t>(tenant * 4 + (state >> 20) % 4);
        table.record(tenant, vaddr, tid, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.accesses(), kTenants * kOpsPerTenant);
}

}  // namespace
}  // namespace spcd::svc
