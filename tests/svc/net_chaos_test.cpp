// Network fault injection: the chaos engine is a pure function of
// (config, seed, connection, attempt), the chaos-wrapped transport
// degrades sends exactly as the drawn fate dictates, and — the ablation
// the crash-safety story rests on — a full fleet driven over a chaotic
// wire still commits every acked batch exactly once and leaves a
// journal that replays byte for byte, under every chaos profile.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "chaos/net_chaos.hpp"
#include "svc/chaos_transport.hpp"
#include "svc/driver.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/transport.hpp"

namespace spcd::svc {
namespace {

using chaos::NetChaosConfig;
using chaos::NetChaosEngine;
using chaos::SendFate;

std::string tmp_journal(const char* name) { return testing::TempDir() + name; }

TEST(NetChaosTest, DisabledConfigDeliversEverythingWithoutDrawing) {
  NetChaosEngine engine(NetChaosConfig{}, /*connection_id=*/7, /*attempt=*/0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(engine.next_fate(), SendFate::kDeliver);
  }
  EXPECT_EQ(engine.counters().delivered, 100u);
  EXPECT_EQ(engine.counters().injected(), 0u);
}

TEST(NetChaosTest, FateStreamIsDeterministicPerConnectionAndAttempt) {
  NetChaosConfig config;
  config.tear = 0.1;
  config.drop_conn = 0.1;
  config.duplicate = 0.1;
  config.stall = 0.1;
  config.seed = 42;

  NetChaosEngine a(config, 3, 0);
  NetChaosEngine b(config, 3, 0);
  std::vector<SendFate> stream_a;
  std::vector<SendFate> stream_b;
  for (int i = 0; i < 1000; ++i) {
    stream_a.push_back(a.next_fate());
    stream_b.push_back(b.next_fate());
  }
  EXPECT_EQ(stream_a, stream_b);

  // A reconnect (attempt + 1) redraws the stream, and a different
  // connection draws its own — chaos does not kill the same client the
  // same way forever.
  NetChaosEngine retry(config, 3, 1);
  NetChaosEngine other(config, 4, 0);
  std::vector<SendFate> stream_retry;
  std::vector<SendFate> stream_other;
  for (int i = 0; i < 1000; ++i) {
    stream_retry.push_back(retry.next_fate());
    stream_other.push_back(other.next_fate());
  }
  EXPECT_NE(stream_a, stream_retry);
  EXPECT_NE(stream_a, stream_other);

  // With those intensities every fate shows up across 1000 draws.
  EXPECT_GT(a.counters().delivered, 0u);
  EXPECT_GT(a.counters().torn, 0u);
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
  EXPECT_GT(a.counters().stalled, 0u);
}

TEST(NetChaosTest, TornBytesAlwaysShortensTheFrame) {
  NetChaosConfig config;
  config.tear = 1.0;
  NetChaosEngine engine(config, 1, 0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(engine.torn_bytes(13), 13u);
  }
  EXPECT_EQ(engine.torn_bytes(1), 0u);
}

TEST(NetChaosTest, ValidateCatchesNonsense) {
  NetChaosConfig ok;
  ok.tear = 0.2;
  ok.duplicate = 0.3;
  EXPECT_TRUE(ok.validate().empty());
  EXPECT_TRUE(ok.enabled());
  EXPECT_FALSE(NetChaosConfig{}.enabled());

  NetChaosConfig negative;
  negative.drop_conn = -0.1;
  EXPECT_FALSE(negative.validate().empty());

  NetChaosConfig oversum;
  oversum.tear = 0.6;
  oversum.drop_conn = 0.6;
  EXPECT_FALSE(oversum.validate().empty());

  NetChaosConfig dead_stall;
  dead_stall.stall = 0.1;
  dead_stall.stall_ms = 0;
  EXPECT_FALSE(dead_stall.validate().empty());
}

TEST(NetChaosTest, EnvKnobsParse) {
  setenv("SPCD_CHAOS_NET_TEAR", "0.25", 1);
  setenv("SPCD_CHAOS_NET_DROP", "0.125", 1);
  setenv("SPCD_CHAOS_NET_DUP", "0.0625", 1);
  setenv("SPCD_CHAOS_NET_STALL", "0.03125", 1);
  setenv("SPCD_CHAOS_NET_STALL_MS", "7", 1);
  setenv("SPCD_CHAOS_NET_SEED", "99", 1);
  const NetChaosConfig config = chaos::net_chaos_from_env();
  EXPECT_EQ(config.tear, 0.25);
  EXPECT_EQ(config.drop_conn, 0.125);
  EXPECT_EQ(config.duplicate, 0.0625);
  EXPECT_EQ(config.stall, 0.03125);
  EXPECT_EQ(config.stall_ms, 7u);
  EXPECT_EQ(config.seed, 99u);
  unsetenv("SPCD_CHAOS_NET_TEAR");
  unsetenv("SPCD_CHAOS_NET_DROP");
  unsetenv("SPCD_CHAOS_NET_DUP");
  unsetenv("SPCD_CHAOS_NET_STALL");
  unsetenv("SPCD_CHAOS_NET_STALL_MS");
  unsetenv("SPCD_CHAOS_NET_SEED");
  EXPECT_FALSE(chaos::net_chaos_from_env().enabled());
}

TEST(NetChaosTest, InertWrapperIsTheInnerTransport) {
  auto [client, server] = make_inproc_pair();
  Transport* raw = client.get();
  auto wrapped = maybe_wrap_chaos(std::move(client), NetChaosConfig{}, 1, 0);
  EXPECT_EQ(wrapped.get(), raw);  // chaos off: zero indirection
  EXPECT_EQ(maybe_wrap_chaos(nullptr, NetChaosConfig{}, 1, 0), nullptr);
}

// The ablation: one chaos profile per fault family plus a mixed storm.
// For each, a fleet drives over the chaotic wire; every tenant must
// finish (the client heals everything), every acked batch commits
// exactly once, and the journal replays to the live state byte for byte.
TEST(NetChaosTest, ReplayIsByteIdenticalUnderEveryChaosProfile) {
  struct Profile {
    const char* name;
    NetChaosConfig config;
  };
  std::vector<Profile> profiles(4);
  profiles[0].name = "tear";
  profiles[0].config.tear = 0.05;
  profiles[1].name = "drop";
  profiles[1].config.drop_conn = 0.05;
  profiles[2].name = "duplicate";
  profiles[2].config.duplicate = 0.10;
  profiles[3].name = "storm";
  profiles[3].config.tear = 0.03;
  profiles[3].config.drop_conn = 0.03;
  profiles[3].config.duplicate = 0.05;
  profiles[3].config.stall = 0.02;
  profiles[3].config.stall_ms = 2;

  for (const Profile& profile : profiles) {
    SCOPED_TRACE(profile.name);
    const std::string path =
        tmp_journal(("svc_net_chaos_" + std::string(profile.name) +
                     ".journal")
                        .c_str());
    std::remove(path.c_str());

    ServiceConfig config;
    config.arbitration_interval = 1024;
    config.journal_path = path;
    std::string live_metrics;
    std::string live_decisions;
    DriverConfig driver;
    driver.tenants = 4;
    driver.threads_per_tenant = 2;
    driver.batches_per_tenant = 6;
    driver.events_per_batch = 128;
    driver.reregister_every = 3;
    driver.heartbeat_every = 2;
    driver.backoff_base_ms = 1;
    driver.backoff_max_ms = 8;
    {
      SpcdService service(config);
      ServerConfig server_config;
      server_config.recv_timeout_ms = 10;
      ServiceServer server(service, server_config);
      InProcListener listener;
      std::thread acceptor([&] { server.accept_loop(listener); });

      NetChaosConfig chaos_config = profile.config;
      chaos_config.seed = 7;
      const DriverStats stats =
          drive(driver, [&](std::uint32_t tenant, std::uint32_t attempt) {
            return maybe_wrap_chaos(listener.connect(), chaos_config,
                                    tenant, attempt);
          });
      listener.close();
      server.request_stop();
      acceptor.join();
      server.drain();

      EXPECT_EQ(stats.errors, 0u);
      EXPECT_EQ(stats.tenants_completed, driver.tenants);
      EXPECT_EQ(stats.batches_acked,
                std::uint64_t{driver.tenants} * driver.batches_per_tenant);
      // At-most-once: every acked batch committed exactly once even
      // though the wire tore, dropped, and duplicated frames.
      EXPECT_EQ(service.total_events(),
                std::uint64_t{driver.tenants} * driver.batches_per_tenant *
                    driver.events_per_batch);
      live_metrics = service.metrics_json();
      live_decisions = service.decisions_text();
    }

    const SpcdService::ReplayResult replayed = SpcdService::replay(path);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    EXPECT_EQ(replayed.digest_mismatches, 0u);
    EXPECT_EQ(replayed.service->metrics_json(), live_metrics);
    EXPECT_EQ(replayed.service->decisions_text(), live_decisions);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace spcd::svc
