// TenantClient fault tolerance: a dead connection is healed by
// reconnect + kResume + idempotent re-send (the server's dedup cache
// keeps the commit at-most-once), kRetry backpressure is honored, stale
// replies are discarded rather than misattributed, and a draining server
// stops the client for good.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/driver.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/transport.hpp"

namespace spcd::svc {
namespace {

/// Forwards sends until the fuse burns out, then closes the connection
/// (the frame is lost) — models a peer dying mid-conversation.
class DropAfter : public Transport {
 public:
  DropAfter(std::unique_ptr<Transport> inner, std::uint32_t healthy_sends)
      : inner_(std::move(inner)), remaining_(healthy_sends) {}

  bool send(std::string_view payload) override {
    if (remaining_ == 0) {
      inner_->close();
      return false;
    }
    --remaining_;
    return inner_->send(payload);
  }
  RecvStatus recv(std::string* payload, int timeout_ms) override {
    return inner_->recv(payload, timeout_ms);
  }
  void close() override { inner_->close(); }

 private:
  std::unique_ptr<Transport> inner_;
  std::uint32_t remaining_;
};

std::vector<FaultRecord> test_batch(std::uint32_t batch) {
  DriverConfig driver;
  driver.threads_per_tenant = 2;
  return scripted_batch(driver, 0, batch);
}

ClientConfig fast_client(
    std::function<std::unique_ptr<Transport>(std::uint32_t)> connect) {
  ClientConfig config;
  config.connect = std::move(connect);
  config.request_timeout_ms = 2000;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 4;
  return config;
}

TEST(SvcClientReconnectTest, DeadConnectionHealsViaResumeAndResend) {
  SpcdService service((ServiceConfig()));
  ServerConfig server_config;
  server_config.recv_timeout_ms = 10;
  ServiceServer server(service, server_config);
  InProcListener listener;
  std::thread acceptor([&] { server.accept_loop(listener); });

  // The first connection survives the hello and one batch, then dies on
  // the next send; reconnects get a healthy wire.
  TenantClient client(fast_client([&](std::uint32_t attempt) {
                        auto t = listener.connect();
                        if (attempt == 0 && t != nullptr) {
                          return std::unique_ptr<Transport>(
                              new DropAfter(std::move(t), 2));
                        }
                        return t;
                      }),
                      "healer", 2);
  ASSERT_TRUE(client.hello());
  const std::uint32_t id = client.tenant_id();
  ASSERT_TRUE(client.send_batch(test_batch(0)));
  ASSERT_TRUE(client.send_batch(test_batch(1)));  // dies, heals, commits
  EXPECT_EQ(client.tenant_id(), id);  // resumed, not re-registered
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().resends, 1u);
  EXPECT_TRUE(client.heartbeat());
  EXPECT_TRUE(client.bye());

  listener.close();
  server.request_stop();
  acceptor.join();
  server.drain();
  // Exactly one tenant, exactly two committed batches — the re-sent
  // frame did not double-commit.
  EXPECT_EQ(service.registered_tenants(), 1u);
  EXPECT_EQ(service.total_events(),
            test_batch(0).size() + test_batch(1).size());
  EXPECT_EQ(server.stats().sessions_resumed, 1u);
  EXPECT_EQ(server.stats().heartbeats, 1u);
}

TEST(SvcClientReconnectTest, DuplicateBatchIsSuppressedByTheDedupCache) {
  SpcdService service((ServiceConfig()));
  ServerConfig server_config;
  server_config.recv_timeout_ms = 10;
  ServiceServer server(service, server_config);
  InProcListener listener;
  std::thread acceptor([&] { server.accept_loop(listener); });

  auto wire = listener.connect();
  ASSERT_NE(wire, nullptr);
  ASSERT_TRUE(wire->send(encode_hello("dup", 2)));
  std::string payload;
  ASSERT_EQ(wire->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  ASSERT_EQ(parse_message(payload)->type, MessageType::kWelcome);

  // The same sequenced frame lands twice (a retransmit into a half-open
  // connection): byte-identical acks, one commit.
  const std::string frame = encode_fault_batch(1, test_batch(0));
  ASSERT_TRUE(wire->send(frame));
  ASSERT_EQ(wire->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  const std::string first_ack = payload;
  ASSERT_EQ(parse_message(first_ack)->type, MessageType::kBatchAck);
  ASSERT_TRUE(wire->send(frame));
  ASSERT_EQ(wire->recv(&payload, 2000), Transport::RecvStatus::kFrame);
  EXPECT_EQ(payload, first_ack);

  ASSERT_TRUE(wire->send(encode_bye()));
  wire->close();
  listener.close();
  server.request_stop();
  acceptor.join();
  server.drain();
  EXPECT_EQ(service.total_events(), test_batch(0).size());
  EXPECT_EQ(server.stats().duplicates_suppressed, 1u);
}

TEST(SvcClientReconnectTest, RetryBackpressureIsHonored) {
  // A scripted server: welcome, then one kRetry before the real ack.
  InProcListener listener;
  std::thread fake_server([&] {
    auto session = listener.accept(2000);
    ASSERT_NE(session, nullptr);
    std::string payload;
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    auto hello = parse_message(payload);
    ASSERT_TRUE(hello.has_value());
    ASSERT_EQ(hello->type, MessageType::kHello);
    ASSERT_TRUE(session->send(encode_welcome(1, 0)));

    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    auto batch = parse_message(payload);
    ASSERT_TRUE(batch.has_value());
    ASSERT_TRUE(session->send(encode_retry(batch->client_seq, 1)));
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    auto resent = parse_message(payload);
    ASSERT_TRUE(resent.has_value());
    EXPECT_EQ(resent->client_seq, batch->client_seq);
    EXPECT_EQ(resent->events, batch->events);
    ASSERT_TRUE(session->send(
        encode_batch_ack(resent->client_seq, 1, 0)));
    session->close();
  });

  TenantClient client(
      fast_client([&](std::uint32_t) { return listener.connect(); }),
      "pushed-back", 2);
  ASSERT_TRUE(client.hello());
  EXPECT_TRUE(client.send_batch(test_batch(0)));
  EXPECT_EQ(client.stats().retries, 1u);
  fake_server.join();
  listener.close();
}

TEST(SvcClientReconnectTest, StaleRepliesAreDiscardedNotMisattributed) {
  // A scripted server that burps a stale duplicate ack (wrong
  // client_seq) before the real one.
  InProcListener listener;
  std::thread fake_server([&] {
    auto session = listener.accept(2000);
    ASSERT_NE(session, nullptr);
    std::string payload;
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    ASSERT_TRUE(session->send(encode_welcome(1, 0)));
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    auto batch = parse_message(payload);
    ASSERT_TRUE(batch.has_value());
    ASSERT_TRUE(session->send(
        encode_batch_ack(batch->client_seq + 77, 1, 0)));  // stale
    ASSERT_TRUE(session->send(
        encode_batch_ack(batch->client_seq, 2, 0)));  // the real ack
    session->close();
  });

  TenantClient client(
      fast_client([&](std::uint32_t) { return listener.connect(); }),
      "skeptic", 2);
  ASSERT_TRUE(client.hello());
  EXPECT_TRUE(client.send_batch(test_batch(0)));
  EXPECT_GE(client.stats().stale_frames, 1u);
  fake_server.join();
  listener.close();
}

TEST(SvcClientReconnectTest, ShutdownFrameStopsTheClientForGood) {
  InProcListener listener;
  std::thread fake_server([&] {
    auto session = listener.accept(2000);
    ASSERT_NE(session, nullptr);
    std::string payload;
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    ASSERT_TRUE(session->send(encode_welcome(1, 0)));
    ASSERT_EQ(session->recv(&payload, 2000), Transport::RecvStatus::kFrame);
    ASSERT_TRUE(session->send(encode_shutdown()));
    session->close();
  });

  TenantClient client(
      fast_client([&](std::uint32_t) { return listener.connect(); }),
      "drained", 2);
  ASSERT_TRUE(client.hello());
  EXPECT_FALSE(client.send_batch(test_batch(0)));
  EXPECT_TRUE(client.shutdown_seen());
  // Further requests fail fast without reconnect storms.
  const std::uint64_t connects = client.stats().connects;
  EXPECT_FALSE(client.send_batch(test_batch(1)));
  EXPECT_EQ(client.stats().connects, connects);
  fake_server.join();
  listener.close();
}

TEST(SvcClientReconnectTest, GivesUpAfterMaxAttemptsWhenNobodyListens) {
  ClientConfig config = fast_client(
      [](std::uint32_t) { return std::unique_ptr<Transport>(); });
  config.max_attempts = 3;
  TenantClient client(std::move(config), "lonely", 2);
  EXPECT_FALSE(client.hello());
}

}  // namespace
}  // namespace spcd::svc
