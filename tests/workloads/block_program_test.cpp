#include "workloads/block_program.hpp"

#include <gtest/gtest.h>

#include "workloads/layout.hpp"

namespace spcd::workloads {
namespace {

/// Emits `blocks` blocks of `per_block` compute ops.
class CountingProgram final : public BlockProgram {
 public:
  CountingProgram(int blocks, int per_block)
      : blocks_(blocks), per_block_(per_block) {}
  int fills = 0;

 protected:
  bool fill(std::vector<sim::Op>& out) override {
    if (fills >= blocks_) return false;
    ++fills;
    for (int i = 0; i < per_block_; ++i) {
      out.push_back(sim::Op::compute(1, 10));
    }
    return true;
  }

 private:
  int blocks_, per_block_;
};

TEST(BlockProgramTest, DrainsAllBlocksThenFinishes) {
  CountingProgram program(3, 5);
  int ops = 0;
  while (program.next().kind != sim::OpKind::kFinish) ++ops;
  EXPECT_EQ(ops, 15);
  EXPECT_EQ(program.fills, 3);
}

TEST(BlockProgramTest, FillIsLazy) {
  CountingProgram program(2, 4);
  EXPECT_EQ(program.fills, 0);
  (void)program.next();
  EXPECT_EQ(program.fills, 1);  // only the first block generated so far
  for (int i = 0; i < 3; ++i) (void)program.next();
  EXPECT_EQ(program.fills, 1);
  (void)program.next();  // crosses into block 2
  EXPECT_EQ(program.fills, 2);
}

TEST(BlockProgramTest, EmptyBlocksAreSkipped) {
  class Sparse final : public BlockProgram {
   public:
    int fills = 0;

   protected:
    bool fill(std::vector<sim::Op>& out) override {
      ++fills;
      if (fills > 5) return false;
      if (fills == 3) out.push_back(sim::Op::compute(1, 1));
      return true;  // all other blocks empty
    }
  };
  Sparse program;
  EXPECT_EQ(program.next().kind, sim::OpKind::kCompute);
  EXPECT_EQ(program.next().kind, sim::OpKind::kFinish);
  EXPECT_EQ(program.fills, 6);
}

TEST(BlockProgramTest, FinishIsSticky) {
  CountingProgram program(1, 1);
  (void)program.next();
  EXPECT_EQ(program.next().kind, sim::OpKind::kFinish);
  EXPECT_EQ(program.next().kind, sim::OpKind::kFinish);
}

TEST(LayoutTest, PrivateRegionsAreDisjointAndAboveShared) {
  EXPECT_GT(kPrivateBase, kSharedBase);
  for (std::uint32_t t = 0; t < 64; ++t) {
    EXPECT_EQ(private_base(t + 1) - private_base(t), kPrivateStride);
  }
  // 64 MiB windows: a thread's buffer never bleeds into the next window.
  EXPECT_EQ(private_base(1) - private_base(0), 64ULL * 1024 * 1024);
}

TEST(OpFactoryTest, BuildersSetAllFields) {
  const auto a = sim::Op::access(0x123, true, 7, 99);
  EXPECT_EQ(a.kind, sim::OpKind::kAccess);
  EXPECT_TRUE(a.write);
  EXPECT_EQ(a.insns, 7u);
  EXPECT_EQ(a.cycles, 99u);
  EXPECT_EQ(a.vaddr, 0x123u);

  const auto c = sim::Op::compute(3, 50);
  EXPECT_EQ(c.kind, sim::OpKind::kCompute);
  EXPECT_EQ(c.insns, 3u);

  EXPECT_EQ(sim::Op::barrier().kind, sim::OpKind::kBarrier);
  EXPECT_EQ(sim::Op::finish().kind, sim::OpKind::kFinish);
}

}  // namespace
}  // namespace spcd::workloads
