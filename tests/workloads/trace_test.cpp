#include "workloads/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/policy.hpp"
#include "sim/machine.hpp"
#include "workloads/npb.hpp"

namespace spcd::workloads {
namespace {

// Op lacks operator==; compare field-wise.
void expect_op_eq(const sim::Op& a, const sim::Op& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.write, b.write);
  EXPECT_EQ(a.insns, b.insns);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.vaddr, b.vaddr);
}

Trace small_trace() {
  auto wl = make_nas("cg", /*seed=*/5, /*scale=*/0.05);
  return Trace::record(*wl);
}

TEST(TraceTest, RecordCapturesEveryThread) {
  const Trace trace = small_trace();
  EXPECT_EQ(trace.num_threads(), 32u);
  EXPECT_GT(trace.total_ops(), 0u);
  for (std::uint32_t t = 0; t < trace.num_threads(); ++t) {
    EXPECT_FALSE(trace.ops_of(t).empty());
  }
}

TEST(TraceTest, RecordingIsDeterministic) {
  auto a = small_trace();
  auto b = small_trace();
  ASSERT_EQ(a.num_threads(), b.num_threads());
  ASSERT_EQ(a.total_ops(), b.total_ops());
  for (std::uint32_t t = 0; t < a.num_threads(); ++t) {
    ASSERT_EQ(a.ops_of(t).size(), b.ops_of(t).size());
    for (std::size_t i = 0; i < a.ops_of(t).size(); ++i) {
      expect_op_eq(a.ops_of(t)[i], b.ops_of(t)[i]);
    }
  }
}

TEST(TraceTest, SaveLoadRoundTrip) {
  const Trace original = small_trace();
  std::stringstream buffer;
  original.save(buffer);
  const Trace restored = Trace::load(buffer);
  ASSERT_EQ(restored.num_threads(), original.num_threads());
  ASSERT_EQ(restored.total_ops(), original.total_ops());
  for (std::uint32_t t = 0; t < original.num_threads(); ++t) {
    for (std::size_t i = 0; i < original.ops_of(t).size(); ++i) {
      expect_op_eq(restored.ops_of(t)[i], original.ops_of(t)[i]);
    }
  }
}

TEST(TraceTest, LoadRejectsGarbage) {
  std::stringstream buffer("not a trace at all");
  EXPECT_DEATH((void)Trace::load(buffer), "Precondition");
}

TEST(TraceReplayTest, ReplayMatchesOriginalExecution) {
  // Replaying the recorded trace must produce exactly the same simulated
  // execution as the original workload (same seeds).
  auto original = make_nas("cg", 5, 0.05);
  Trace trace = Trace::record(*original);

  auto run = [](sim::Workload& wl) {
    sim::Machine machine(arch::dual_xeon_e5_2650());
    auto as = machine.make_address_space();
    sim::Engine engine(machine, as, wl,
                       core::os_spread_placement(machine.topology(),
                                                 wl.num_threads()));
    engine.run();
    return std::make_tuple(engine.finish_time(),
                           engine.counters().instructions,
                           engine.counters().l2_misses);
  };

  auto fresh = make_nas("cg", 5, 0.05);
  TraceReplay replay(std::move(trace));
  EXPECT_EQ(run(*fresh), run(replay));
}

TEST(TraceReplayTest, ReplayWorksUnderDifferentMappings) {
  auto original = make_nas("cg", 5, 0.05);
  TraceReplay replay(Trace::record(*original), "cg-replay");
  EXPECT_EQ(replay.name(), "cg-replay");

  sim::Machine machine(arch::dual_xeon_e5_2650());
  auto as = machine.make_address_space();
  sim::Engine engine(machine, as, replay,
                     core::compact_placement(machine.topology(), 32));
  engine.run();
  EXPECT_GT(engine.finish_time(), 0u);
  EXPECT_FALSE(engine.timed_out());
}

}  // namespace
}  // namespace spcd::workloads
