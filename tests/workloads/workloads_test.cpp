#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/alltoall_kernel.hpp"
#include "workloads/datacube_kernel.hpp"
#include "workloads/domain_kernel.hpp"
#include "workloads/locality.hpp"
#include "workloads/layout.hpp"
#include "workloads/npb.hpp"
#include "workloads/private_kernel.hpp"
#include "workloads/prodcons.hpp"

namespace spcd::workloads {
namespace {

/// Drain a thread program, returning every op (bounded for safety).
std::vector<sim::Op> drain(sim::ThreadProgram& program,
                           std::size_t limit = 5'000'000) {
  std::vector<sim::Op> ops;
  for (std::size_t i = 0; i < limit; ++i) {
    const sim::Op op = program.next();
    if (op.kind == sim::OpKind::kFinish) return ops;
    ops.push_back(op);
  }
  ADD_FAILURE() << "program did not finish within " << limit << " ops";
  return ops;
}

std::size_t barrier_count(const std::vector<sim::Op>& ops) {
  std::size_t n = 0;
  for (const auto& op : ops) {
    if (op.kind == sim::OpKind::kBarrier) ++n;
  }
  return n;
}

TEST(LocalityCursorTest, StaysInBounds) {
  util::Xoshiro256 rng(1);
  LocalityParams params;
  LocalityCursor cursor(0x1000, 0x8000, params);
  for (int i = 0; i < 50000; ++i) {
    const auto addr = cursor.next(rng);
    ASSERT_GE(addr, 0x1000u);
    ASSERT_LT(addr, 0x9000u);
    if (i % 1000 == 0) cursor.drift(static_cast<std::uint64_t>(i));
  }
}

TEST(LocalityCursorTest, LineBurstKeepsConsecutiveAccessesOnOneLine) {
  util::Xoshiro256 rng(2);
  LocalityParams params;
  params.stream_frac = 0.0;  // only hot/background picks, which burst
  params.hot_frac = 1.0;
  params.line_burst = 4;
  LocalityCursor cursor(0, 1 << 20, params);
  std::size_t same_line = 0, total = 0;
  std::uint64_t prev = cursor.next(rng);
  for (int i = 0; i < 4000; ++i) {
    const auto addr = cursor.next(rng);
    ++total;
    if ((addr >> 6) == (prev >> 6)) ++same_line;
    prev = addr;
  }
  // With bursts of 4, at least ~70% of consecutive accesses share a line.
  EXPECT_GT(static_cast<double>(same_line) / static_cast<double>(total),
            0.70);
}

TEST(LocalityCursorTest, StreamAdvancesSequentially) {
  util::Xoshiro256 rng(3);
  LocalityParams params;
  params.stream_frac = 1.0;
  params.hot_frac = 0.0;
  params.stream_step = 8;
  LocalityCursor cursor(100, 1000, params);
  std::uint64_t prev = cursor.next(rng);
  for (int i = 0; i < 50; ++i) {
    const auto addr = cursor.next(rng);
    EXPECT_EQ(addr, 100 + ((prev - 100) + 8) % 1000);
    prev = addr;
  }
}

TEST(DomainKernelTest, ThreadsProduceBarriersPerIteration) {
  DomainParams p;
  p.threads = 4;
  p.iterations = 5;
  p.refs_per_iter = 100;
  p.chunk_bytes = 64 * 1024;
  p.halo_bytes = 8 * 1024;
  DomainKernel kernel(p, 1);
  auto program = kernel.make_thread(0, 0);
  const auto ops = drain(*program);
  EXPECT_EQ(barrier_count(ops), 6u);  // init + 5 iterations
}

TEST(DomainKernelTest, ChunksAreContiguous) {
  DomainParams p;
  p.chunk_bytes = 100'000;  // deliberately not page aligned
  DomainKernel kernel(p, 1);
  EXPECT_EQ(kernel.chunk_base(1) - kernel.chunk_base(0), 100'000u);
}

TEST(DomainKernelTest, HaloTrafficTargetsNeighbors) {
  DomainParams p;
  p.threads = 8;
  p.iterations = 20;
  p.refs_per_iter = 500;
  p.chunk_bytes = 256 * 1024;
  p.halo_bytes = 32 * 1024;
  p.halo_frac = 0.5;
  DomainKernel kernel(p, 1);
  auto program = kernel.make_thread(3, 0);
  std::set<std::uint32_t> touched_owners;
  for (const auto& op : drain(*program)) {
    if (op.kind != sim::OpKind::kAccess) continue;
    const auto owner = static_cast<std::uint32_t>(
        (op.vaddr - kernel.chunk_base(0)) / p.chunk_bytes);
    touched_owners.insert(owner);
  }
  EXPECT_TRUE(touched_owners.count(2));
  EXPECT_TRUE(touched_owners.count(3));
  EXPECT_TRUE(touched_owners.count(4));
  EXPECT_FALSE(touched_owners.count(6));  // distant chunk untouched
}

TEST(DomainKernelTest, RandomStrideEntryReachesDistantThreads) {
  DomainParams p;
  p.threads = 8;
  p.iterations = 30;
  p.refs_per_iter = 1000;
  p.chunk_bytes = 128 * 1024;
  p.halo_bytes = 16 * 1024;
  p.halo_frac = 0.5;
  p.neighbor_strides = {{0, 1.0}};  // pure random partner
  DomainKernel kernel(p, 1);
  auto program = kernel.make_thread(0, 0);
  std::set<std::uint32_t> owners;
  for (const auto& op : drain(*program)) {
    if (op.kind != sim::OpKind::kAccess) continue;
    owners.insert(static_cast<std::uint32_t>(
        (op.vaddr - kernel.chunk_base(0)) / p.chunk_bytes));
  }
  EXPECT_GE(owners.size(), 7u);  // reaches almost everyone
}

TEST(AllToAllKernelTest, RemoteRefsSpreadUniformly) {
  AllToAllParams p;
  p.threads = 8;
  p.iterations = 30;
  p.refs_per_iter = 1000;
  p.chunk_bytes = 128 * 1024;
  p.remote_frac = 0.5;
  AllToAllKernel kernel(p, 1);
  auto program = kernel.make_thread(0, 0);
  std::map<std::uint32_t, int> owner_counts;
  for (const auto& op : drain(*program)) {
    if (op.kind != sim::OpKind::kAccess) continue;
    const auto owner = static_cast<std::uint32_t>(
        (op.vaddr - kernel.chunk_base(0)) / ((p.chunk_bytes + 4095) &
                                             ~4095ULL));
    if (owner != 0) ++owner_counts[owner];
  }
  EXPECT_EQ(owner_counts.size(), 7u);
  int min = INT32_MAX, max = 0;
  for (const auto& [owner, count] : owner_counts) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_LT(max, 2 * min);  // roughly uniform
}

TEST(AllToAllKernelTest, RemoteWritesFlagHonored) {
  AllToAllParams p;
  p.threads = 4;
  p.iterations = 10;
  p.refs_per_iter = 500;
  p.chunk_bytes = 64 * 1024;
  p.remote_frac = 1.0;
  p.remote_writes = true;
  AllToAllKernel kernel(p, 1);
  auto program = kernel.make_thread(0, 0);
  bool saw_iteration_op = false;
  std::size_t barriers = 0;
  for (const auto& op : drain(*program)) {
    if (op.kind == sim::OpKind::kBarrier) {
      ++barriers;
      continue;
    }
    if (barriers >= 1 && op.kind == sim::OpKind::kAccess) {
      saw_iteration_op = true;
      EXPECT_TRUE(op.write);  // every post-init ref is a remote write
    }
  }
  EXPECT_TRUE(saw_iteration_op);
}

TEST(PrivateKernelTest, AlmostNoSharedAccesses) {
  PrivateParams p;
  p.threads = 4;
  p.iterations = 10;
  p.refs_per_iter = 2000;
  p.shared_frac = 0.001;
  PrivateKernel kernel(p, 1);
  auto program = kernel.make_thread(2, 0);
  std::size_t shared = 0, total = 0;
  for (const auto& op : drain(*program)) {
    if (op.kind != sim::OpKind::kAccess) continue;
    ++total;
    if (op.vaddr < kPrivateBase) ++shared;
  }
  EXPECT_LT(static_cast<double>(shared) / static_cast<double>(total), 0.01);
}

TEST(DataCubeKernelTest, HotWindowOverlapsNeighborSlices) {
  DataCubeParams p;
  p.threads = 8;
  p.iterations = 10;
  p.refs_per_iter = 2000;
  p.cube_bytes = 8 * util::kMiB;
  p.uniform_frac = 0.0;
  p.hot_frac = 1.0;
  DataCubeKernel kernel(p, 1);
  auto program = kernel.make_thread(4, 0);
  const std::uint64_t slice = p.cube_bytes / p.threads;
  std::set<std::uint32_t> slices;
  std::size_t barriers = 0;
  for (const auto& op : drain(*program)) {
    if (op.kind == sim::OpKind::kBarrier) {
      ++barriers;
      continue;
    }
    if (barriers == 0 || op.kind != sim::OpKind::kAccess) continue;
    if (op.vaddr >= kPrivateBase) continue;
    slices.insert(static_cast<std::uint32_t>((op.vaddr - kSharedBase) /
                                             slice));
  }
  EXPECT_TRUE(slices.count(4));
  // The 1.25-slice hot window spills into an adjacent slice.
  EXPECT_GE(slices.size(), 2u);
  for (const auto s : slices) {
    EXPECT_GE(s, 3u);
    EXPECT_LE(s, 5u);
  }
}

TEST(ProducerConsumerTest, PartnersMatchPaperPhases) {
  ProdConsParams p;
  ProducerConsumer wl(p, 1);
  // Phase 0: neighbors.
  EXPECT_EQ(wl.partner_in_phase(0, 0), 1u);
  EXPECT_EQ(wl.partner_in_phase(1, 0), 0u);
  EXPECT_EQ(wl.partner_in_phase(30, 0), 31u);
  // Phase 1: distant (t, t+16).
  EXPECT_EQ(wl.partner_in_phase(0, 1), 16u);
  EXPECT_EQ(wl.partner_in_phase(16, 1), 0u);
  EXPECT_EQ(wl.partner_in_phase(31, 1), 15u);
  // Partnership is symmetric in both phases.
  for (std::uint32_t phase = 0; phase < 2; ++phase) {
    for (std::uint32_t t = 0; t < 32; ++t) {
      EXPECT_EQ(wl.partner_in_phase(wl.partner_in_phase(t, phase), phase), t);
    }
  }
}

TEST(ProducerConsumerTest, PairSharesBufferWithinPhase) {
  ProdConsParams p;
  ProducerConsumer wl(p, 1);
  EXPECT_EQ(wl.buffer_base(0, 0), wl.buffer_base(1, 0));
  EXPECT_EQ(wl.buffer_base(0, 1), wl.buffer_base(16, 1));
  EXPECT_NE(wl.buffer_base(0, 0), wl.buffer_base(2, 0));
  // Phase regions are disjoint.
  EXPECT_NE(wl.buffer_base(0, 0), wl.buffer_base(0, 1));
}

TEST(ProducerConsumerTest, ProducerWritesConsumerReads) {
  ProdConsParams p;
  p.pairs = 2;
  p.iterations_per_phase = 5;
  p.phases = 1;
  p.refs_per_iter = 1000;
  ProducerConsumer wl(p, 1);
  auto producer = wl.make_thread(0, 0);
  auto consumer = wl.make_thread(1, 0);
  auto count_writes = [](const std::vector<sim::Op>& ops) {
    std::size_t w = 0, total = 0;
    for (const auto& op : ops) {
      if (op.kind != sim::OpKind::kAccess) continue;
      ++total;
      if (op.write) ++w;
    }
    return static_cast<double>(w) / static_cast<double>(total);
  };
  EXPECT_GT(count_writes(drain(*producer)), 0.8);
  EXPECT_LT(count_writes(drain(*consumer)), 0.2);
}

TEST(NpbRegistryTest, AllTenBenchmarksListed) {
  const auto& list = nas_benchmarks();
  ASSERT_EQ(list.size(), 10u);
  EXPECT_EQ(list[0].name, "bt");
  EXPECT_EQ(list[9].name, "ua");
  // Classification matches the paper's Table II.
  std::map<std::string, PatternClass> expected = {
      {"bt", PatternClass::kHeterogeneous},
      {"cg", PatternClass::kHeterogeneous},
      {"dc", PatternClass::kHeterogeneous},
      {"ep", PatternClass::kHomogeneous},
      {"ft", PatternClass::kHomogeneous},
      {"is", PatternClass::kHomogeneous},
      {"lu", PatternClass::kHeterogeneous},
      {"mg", PatternClass::kHeterogeneous},
      {"sp", PatternClass::kHeterogeneous},
      {"ua", PatternClass::kHeterogeneous},
  };
  for (const auto& info : list) {
    EXPECT_EQ(info.pattern, expected.at(info.name)) << info.name;
  }
}

TEST(NpbRegistryTest, EveryBenchmarkInstantiatesWith32Threads) {
  for (const auto& info : nas_benchmarks()) {
    const auto wl = make_nas(info.name, 1);
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->num_threads(), 32u) << info.name;
    EXPECT_EQ(wl->name(), info.name);
    auto program = wl->make_thread(0, 0);
    EXPECT_NE(program->next().kind, sim::OpKind::kFinish) << info.name;
  }
}

TEST(NpbRegistryTest, UnknownNameThrows) {
  EXPECT_THROW((void)make_nas("xx", 1), std::invalid_argument);
}

TEST(NpbRegistryTest, ScaleShortensRuns) {
  const auto full = make_nas("sp", 1, 1.0);
  const auto tiny = make_nas("sp", 1, 0.05);
  auto count_ops = [](sim::Workload& wl) {
    auto program = wl.make_thread(0, 0);
    std::size_t n = 0;
    while (program->next().kind != sim::OpKind::kFinish) ++n;
    return n;
  };
  EXPECT_LT(count_ops(*tiny), count_ops(*full) / 5);
}

TEST(NpbRegistryTest, FactoryAdapterWorks) {
  const auto factory = nas_factory("cg", 0.1);
  const auto wl = factory(123);
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->name(), "cg");
}

TEST(NpbRegistryTest, ProdconsFactory) {
  const auto wl = make_prodcons(1, 0.2);
  ASSERT_NE(wl, nullptr);
  EXPECT_EQ(wl->num_threads(), 32u);
}

}  // namespace
}  // namespace spcd::workloads
