#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace spcd::util {
namespace {

/// Unique-ish per-test scratch path inside the build tree.
std::string temp_path(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string("journal_test_") + info->name() + "_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

class JournalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string path(const std::string& name) {
    cleanup_.push_back(temp_path(name));
    return cleanup_.back();
  }
  std::vector<std::string> cleanup_;
};

TEST_F(JournalTest, MissingFileLoadsInvalid) {
  const Journal::LoadResult r = Journal::load(path("missing"));
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
}

TEST_F(JournalTest, AppendedRecordsRoundTrip) {
  const std::string p = path("roundtrip");
  {
    Journal j = Journal::create(p, "meta v1");
    ASSERT_TRUE(j.ok());
    EXPECT_TRUE(j.append("first record"));
    EXPECT_TRUE(j.append(""));  // empty records are legal
    EXPECT_TRUE(j.append("third record with spaces  and  tabs\t"));
    EXPECT_EQ(j.records_written(), 3u);
  }
  const Journal::LoadResult r = Journal::load(p);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.meta, "meta v1");
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "first record");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], "third record with spaces  and  tabs\t");
}

TEST_F(JournalTest, CreateTruncatesAnExistingJournal) {
  const std::string p = path("truncate");
  { Journal::create(p, "old").append("stale"); }
  { Journal::create(p, "new"); }
  const Journal::LoadResult r = Journal::load(p);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.meta, "new");
  EXPECT_TRUE(r.records.empty());
}

TEST_F(JournalTest, RotateKeepsOnlyTheGivenRecordsAndStaysAppendable) {
  const std::string p = path("rotate");
  {
    Journal j = Journal::create(p, "meta");
    j.append("a");
    j.append("b");
    j.append("c");
  }
  {
    Journal j = Journal::rotate(p, "meta", {"a", "c"});
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j.records_written(), 2u);
    EXPECT_TRUE(j.append("d"));
    EXPECT_EQ(j.records_written(), 3u);
  }
  const Journal::LoadResult r = Journal::load(p);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.records, (std::vector<std::string>{"a", "c", "d"}));
  // No .tmp leftover after a successful rotation.
  std::ifstream tmp(p + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(JournalTest, TruncatedTailRecoversIntactPrefix) {
  const std::string p = path("torn");
  {
    Journal j = Journal::create(p, "meta");
    j.append("record one");
    j.append("record two");
  }
  const std::string full = read_file(p);
  // Chop bytes off the end one at a time: the loader must never crash and
  // never report more than the intact prefix.
  for (std::size_t cut = 1; cut <= full.size(); ++cut) {
    write_file(p, full.substr(0, full.size() - cut));
    const Journal::LoadResult r = Journal::load(p);
    // Any cut removes at least record two's terminator, so the loader can
    // recover at most the first record — and exactly it while its frame
    // is untouched.
    ASSERT_LT(r.records.size(), 2u);
    if (!r.records.empty()) {
      EXPECT_EQ(r.records[0], "record one");
    }
  }
}

TEST_F(JournalTest, CorruptRecordStopsTheWalkWithoutThrowing) {
  const std::string p = path("bitflip");
  {
    Journal j = Journal::create(p, "meta");
    j.append("aaaa");
    j.append("bbbb");
  }
  std::string contents = read_file(p);
  // Flip one payload byte of the second record ("bbbb" -> "bbxb").
  const std::size_t pos = contents.rfind("bbbb");
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 2] = 'x';
  write_file(p, contents);
  const Journal::LoadResult r = Journal::load(p);
  ASSERT_TRUE(r.valid);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "aaaa");
  EXPECT_TRUE(r.torn_tail);
}

TEST_F(JournalTest, GarbageFilesLoadInvalidWithoutThrowing) {
  const std::string p = path("garbage");
  for (const char* contents :
       {"", "not a journal\n", "spcd-journal v", "\n\n\n",
        "spcd-journal v1 meta"}) {  // header without newline is torn
    write_file(p, contents);
    const Journal::LoadResult r = Journal::load(p);
    EXPECT_TRUE(r.records.empty()) << "contents: " << contents;
  }
}

TEST_F(JournalTest, RecordsWithNewlinesSurvive) {
  // The frame carries an explicit length, so payloads may contain the
  // record separator itself.
  const std::string p = path("newlines");
  {
    Journal j = Journal::create(p, "meta");
    j.append("line1\nline2\n");
    j.append("#rec 5 deadbeef\nfake frame");
  }
  const Journal::LoadResult r = Journal::load(p);
  ASSERT_TRUE(r.valid);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "line1\nline2\n");
  EXPECT_EQ(r.records[1], "#rec 5 deadbeef\nfake frame");
}

}  // namespace
}  // namespace spcd::util
