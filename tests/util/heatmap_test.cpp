#include "util/heatmap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spcd::util {
namespace {

TEST(HeatmapTest, ZeroMatrixIsAllLightest) {
  std::vector<double> m(4 * 4, 0.0);
  HeatmapOptions opts;
  const std::string out = render_heatmap(m, 4, opts);
  for (char dark : {'@', '%', '#'}) {
    EXPECT_EQ(out.find(dark), std::string::npos);
  }
}

TEST(HeatmapTest, MaxCellGetsDarkestGlyph) {
  std::vector<double> m(3 * 3, 0.0);
  m[1 * 3 + 2] = 100.0;
  const std::string out = render_heatmap(m, 3);
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(HeatmapTest, FixedScaleRespectsGivenMax) {
  std::vector<double> m(2 * 2, 50.0);
  HeatmapOptions opts;
  opts.auto_scale = false;
  opts.fixed_max = 100.0;
  const std::string out = render_heatmap(m, 2, opts);
  // 50/100 with a 10-glyph ramp lands mid-ramp, not at '@'.
  EXPECT_EQ(out.find('@'), std::string::npos);
}

TEST(HeatmapTest, RowCountMatches) {
  std::vector<double> m(8 * 8, 1.0);
  const std::string out = render_heatmap(m, 8);
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  // 8 data rows + at least one label row.
  EXPECT_GE(lines, 9u);
}

TEST(HeatmapTest, U64OverloadMatchesDouble) {
  std::vector<std::uint64_t> mi{0, 10, 10, 0};
  std::vector<double> md{0.0, 10.0, 10.0, 0.0};
  EXPECT_EQ(render_heatmap_u64(mi, 2), render_heatmap(md, 2));
}

TEST(HeatmapDeathTest, WrongSizeAborts) {
  std::vector<double> m(5, 0.0);
  EXPECT_DEATH((void)render_heatmap(m, 3), "Precondition");
}

}  // namespace
}  // namespace spcd::util
