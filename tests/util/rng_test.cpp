#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace spcd::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, Reproducible) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, ReseedResetsStream) {
  Xoshiro256 a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro256Test, BelowStaysInBounds) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
  }
}

TEST(Xoshiro256Test, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256Test, RangeInclusive) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values of a tiny range get hit
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, ChanceMatchesProbability) {
  Xoshiro256 rng(77);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(DeriveSeedTest, ChildStreamsDiffer) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  const auto other_parent = derive_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, other_parent);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
}

TEST(ShuffleTest, ProducesPermutation) {
  Xoshiro256 rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(ShuffleTest, DifferentSeedsGiveDifferentOrders) {
  std::vector<int> a(32), b(32);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Xoshiro256 ra(1), rb(2);
  shuffle(a.begin(), a.end(), ra);
  shuffle(b.begin(), b.end(), rb);
  EXPECT_NE(a, b);
}

TEST(ShuffleTest, EmptyAndSingletonAreNoops) {
  Xoshiro256 rng(1);
  std::vector<int> empty;
  shuffle(empty.begin(), empty.end(), rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one[0], 7);
}

}  // namespace
}  // namespace spcd::util
