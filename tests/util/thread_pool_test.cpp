#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace spcd::util {
namespace {

TEST(ConfiguredJobsTest, ReadsEnvAndDefaultsToHardware) {
  ::setenv("SPCD_JOBS", "3", 1);
  EXPECT_EQ(configured_jobs(), 3u);
  ::setenv("SPCD_JOBS", "1", 1);
  EXPECT_EQ(configured_jobs(), 1u);
  ::unsetenv("SPCD_JOBS");
  EXPECT_GE(configured_jobs(), 1u);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
    // Inline execution: the job already ran when submit() returned.
    EXPECT_EQ(static_cast<int>(order.size()), i + 1);
  }
  pool.wait();
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kJobs = 200;
  std::vector<std::atomic<int>> hits(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  }
  pool.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllJobsFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done++;
    });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { count++; });
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstJobException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&completed, i] {
      if (i == 5) throw std::runtime_error("cell failed");
      completed++;
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
  // The error is consumed; the pool keeps working.
  pool.submit([&completed] { completed++; });
  pool.wait();
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, WaitAggregatesEveryJobError) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit(
        [i] {
          if (i % 4 == 0) {
            throw std::runtime_error("job " + std::to_string(i) + " failed");
          }
        },
        "cell-" + std::to_string(i));
  }
  try {
    pool.wait();
    FAIL() << "wait() should have thrown JobErrors";
  } catch (const JobErrors& errors) {
    // Every failed job is listed, with its submit() context attached.
    ASSERT_EQ(errors.errors().size(), 4u);
    for (const auto& entry : errors.errors()) {
      EXPECT_TRUE(entry.context.rfind("cell-", 0) == 0) << entry.context;
      EXPECT_NE(entry.message.find("failed"), std::string::npos);
      EXPECT_NE(entry.error, nullptr);
      // The summary names the failure count and each context.
      EXPECT_NE(std::string(errors.what()).find(entry.context),
                std::string::npos);
    }
  }
  // The errors are consumed; the pool keeps working.
  std::atomic<int> done{0};
  pool.submit([&done] { done++; });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, WaitAllNoexceptSwallowsErrors) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done, i] {
      if (i == 3) throw std::runtime_error("ignored");
      done++;
    });
  }
  pool.wait_all_noexcept();
  EXPECT_EQ(done.load(), 7);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPoolTest, SerialSubmitPropagatesExceptionDirectly) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  const auto squares =
      parallel_map(pool, items, [](int x) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, JobDecoratorWrapsEveryJob) {
  std::atomic<int> wrapped{0};
  std::atomic<int> ran{0};
  // The decorator runs on the *submitting* thread; the wrapper it returns
  // runs on whichever worker executes the job.
  ThreadPool pool(3, [&wrapped](std::function<void()> job) {
    return [&wrapped, job = std::move(job)] {
      wrapped++;
      job();
    };
  });
  for (int i = 0; i < 24; ++i) {
    pool.submit([&ran] { ran++; });
  }
  pool.wait();
  EXPECT_EQ(wrapped.load(), 24);
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPoolTest, JobDecoratorAppliesOnInlineSerialPool) {
  int wrapped = 0;
  ThreadPool pool(1, [&wrapped](std::function<void()> job) {
    return [&wrapped, job = std::move(job)] {
      ++wrapped;
      job();
    };
  });
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(wrapped, 1);
}

TEST(ThreadPoolTest, BindCurrentSessionCarriesSessionIntoWorkers) {
  // The engine-shard arrangement: the pool is constructed with
  // obs::bind_current_session, so jobs submitted from a thread with a
  // bound session trace into that session even on pool workers (which
  // otherwise have none — the bug this decorator fixes).
  obs::TraceConfig config;
  config.enabled = true;
  obs::Session session(config);
  ThreadPool pool(2, obs::bind_current_session);
  {
    obs::ScopedSession scope(&session);
    for (int i = 0; i < 8; ++i) {
      pool.submit([] {
        obs::trace_instant("test", "from_worker",
                           static_cast<util::Cycles>(1));
      });
    }
    pool.wait();
  }
  const obs::RunCapture capture = session.capture();
  EXPECT_EQ(capture.events.size(), 8u);
  for (const auto& ev : capture.events) {
    EXPECT_STREQ(ev.name, "from_worker");
  }
}

TEST(ThreadPoolTest, BindCurrentSessionWithNoSessionIsSilent) {
  // Capturing nullptr is valid: the job runs un-instrumented, and it does
  // NOT inherit whatever session the worker last had bound.
  ThreadPool pool(2, obs::bind_current_session);
  std::atomic<int> ran{0};
  pool.submit([&ran] {
    EXPECT_EQ(obs::current_session(), nullptr);
    ran++;
  });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done++;
      });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace spcd::util
