#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace spcd::util {
namespace {

TEST(LogTest, LevelCanBeChangedAtRuntime) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(LogTest, MacrosCompileAndRespectLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // These must not crash and must not evaluate side effects eagerly when
  // filtered... (the level check happens before formatting).
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  SPCD_LOG_DEBUG("hidden %d", count());
  EXPECT_EQ(evaluations, 0);  // filtered: argument not evaluated
  set_log_level(before);
}

TEST(ContractsTest, PassingConditionsAreSilent) {
  SPCD_EXPECTS(1 + 1 == 2);
  SPCD_ENSURES(true);
  SPCD_ASSERT(42 > 0);
  SUCCEED();
}

TEST(ContractsDeathTest, EachKindReportsItsName) {
  EXPECT_DEATH(SPCD_EXPECTS(false), "Precondition");
  EXPECT_DEATH(SPCD_ENSURES(false), "Postcondition");
  EXPECT_DEATH(SPCD_ASSERT(false), "Invariant");
}

TEST(UnitsTest, SizeConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(UnitsTest, CycleTimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(2'000'000'000ULL, 2e9), 1.0);
  EXPECT_EQ(seconds_to_cycles(1.0, 2e9), 2'000'000'000ULL);
  EXPECT_EQ(milliseconds_to_cycles(0.25, 2e9), 500'000ULL);
}

TEST(UnitsTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(log2_exact(1ULL << 40), 40u);
}

}  // namespace
}  // namespace spcd::util
