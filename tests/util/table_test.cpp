#include "util/table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace spcd::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("a       1"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTableTest, MissingCellsRenderEmpty) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(TextTableTest, SeparatorEmitsRule) {
  TextTable t;
  t.header({"header"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  const std::string out = t.render();
  // header rule + explicit separator
  std::size_t rules = 0;
  for (std::size_t pos = out.find("---"); pos != std::string::npos;
       pos = out.find("---", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 2u);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvSkipsSeparators) {
  TextTable t;
  t.header({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  EXPECT_EQ(t.to_csv(), "a\n1\n2\n");
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FormatTest, PercentDeltaShowsSign) {
  EXPECT_EQ(fmt_percent_delta(0.833, 1), "-16.7%");
  EXPECT_EQ(fmt_percent_delta(1.046, 1), "+4.6%");
  EXPECT_EQ(fmt_percent_delta(1.0, 1), "+0.0%");
}

TEST(FormatTest, MeanCi) {
  EXPECT_EQ(fmt_mean_ci(12.345, 0.567, 2), "12.35 ± 0.57");
}

TEST(FormatTest, Thousands) {
  EXPECT_EQ(fmt_thousands(0), "0");
  EXPECT_EQ(fmt_thousands(999), "999");
  EXPECT_EQ(fmt_thousands(1000), "1,000");
  EXPECT_EQ(fmt_thousands(177500), "177,500");
  EXPECT_EQ(fmt_thousands(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace spcd::util
