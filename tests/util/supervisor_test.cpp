#include "util/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace spcd::util {
namespace {

/// Fast-failing config for tests: negligible backoff, no watchdog.
SupervisorConfig test_config(std::uint32_t retries) {
  SupervisorConfig c;
  c.max_retries = retries;
  c.backoff_base_ms = 1;
  c.backoff_cap_ms = 2;
  return c;
}

TEST(SupervisorConfigTest, FromEnvReadsTheKnobs) {
  ::setenv("SPCD_CELL_RETRIES", "7", 1);
  ::setenv("SPCD_CELL_TIMEOUT_MS", "1234", 1);
  ::setenv("SPCD_CELL_BACKOFF_MS", "3", 1);
  ::setenv("SPCD_DRAIN_MS", "99", 1);
  const SupervisorConfig c = SupervisorConfig::from_env();
  EXPECT_EQ(c.max_retries, 7u);
  EXPECT_EQ(c.timeout_ms, 1234u);
  EXPECT_EQ(c.backoff_base_ms, 3u);
  EXPECT_EQ(c.drain_ms, 99u);
  ::unsetenv("SPCD_CELL_RETRIES");
  ::unsetenv("SPCD_CELL_TIMEOUT_MS");
  ::unsetenv("SPCD_CELL_BACKOFF_MS");
  ::unsetenv("SPCD_DRAIN_MS");
  const SupervisorConfig d = SupervisorConfig::from_env();
  EXPECT_EQ(d.max_retries, 2u);
  EXPECT_EQ(d.timeout_ms, 0u);
}

TEST(SupervisorTest, RunsEveryJobOnce) {
  Supervisor sup(4, test_config(2));
  std::atomic<int> runs{0};
  for (int i = 0; i < 32; ++i) {
    sup.submit("job-" + std::to_string(i), static_cast<std::uint64_t>(i),
               [&runs](const CancelToken&, std::uint32_t) { runs++; });
  }
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(runs.load(), 32);
  EXPECT_EQ(report.completed, 32u);
  EXPECT_EQ(report.retried, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(report.recovered.empty());
  EXPECT_TRUE(report.all_completed());
  EXPECT_FALSE(report.stopped);
}

TEST(SupervisorTest, RetriesRecoverFlakyJobs) {
  Supervisor sup(2, test_config(3));
  std::atomic<int> attempts{0};
  sup.submit("flaky", 1,
             [&attempts](const CancelToken&, std::uint32_t attempt) {
               attempts++;
               if (attempt < 2) throw std::runtime_error("transient");
             });
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retried, 2u);
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(report.recovered.size(), 1u);
  EXPECT_EQ(report.recovered[0].name, "flaky");
  EXPECT_EQ(report.recovered[0].attempts, 3u);
  EXPECT_EQ(report.recovered[0].error, "transient");
  EXPECT_TRUE(report.all_completed());
}

TEST(SupervisorTest, ExhaustedRetriesQuarantineWithoutAborting) {
  Supervisor sup(2, test_config(1));
  std::atomic<int> good{0};
  sup.submit("doomed-b", 1, [](const CancelToken&, std::uint32_t) {
    throw std::runtime_error("permanent failure");
  });
  sup.submit("doomed-a", 2, [](const CancelToken&, std::uint32_t) {
    throw std::runtime_error("also permanent");
  });
  for (int i = 0; i < 8; ++i) {
    sup.submit("ok-" + std::to_string(i), static_cast<std::uint64_t>(i),
               [&good](const CancelToken&, std::uint32_t) { good++; });
  }
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(good.load(), 8);
  EXPECT_EQ(report.completed, 8u);
  ASSERT_EQ(report.quarantined.size(), 2u);
  // Sorted by name for a stable report.
  EXPECT_EQ(report.quarantined[0].name, "doomed-a");
  EXPECT_EQ(report.quarantined[1].name, "doomed-b");
  EXPECT_EQ(report.quarantined[0].attempts, 2u);  // 1 + max_retries
  EXPECT_EQ(report.quarantined[0].error, "also permanent");
  EXPECT_FALSE(report.all_completed());
}

TEST(SupervisorTest, WatchdogCancelsHungAttempts) {
  SupervisorConfig config = test_config(1);
  config.timeout_ms = 50;
  Supervisor sup(2, config);
  std::atomic<int> attempts{0};
  sup.submit("hang", 1,
             [&attempts](const CancelToken& token, std::uint32_t attempt) {
               attempts++;
               if (attempt == 0) {
                 // Cooperative hang: wait for the watchdog to fire.
                 const auto deadline = std::chrono::steady_clock::now() +
                                       std::chrono::seconds(10);
                 while (!token.cancelled() &&
                        std::chrono::steady_clock::now() < deadline) {
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(1));
                 }
                 ASSERT_TRUE(token.cancelled()) << "watchdog never fired";
                 throw std::runtime_error("cancelled");
               }
             });
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_GE(report.watchdog_fires, 1u);
  EXPECT_TRUE(report.all_completed());
}

TEST(SupervisorTest, StopSkipsUnstartedJobs) {
  // Once a stop is requested, submitted jobs are skipped, never run (a
  // 1-thread pool runs inline on submit, so each job checks the flag
  // exactly once, deterministically).
  Supervisor sup(1, test_config(0));
  sup.request_stop();
  std::atomic<int> runs{0};
  for (int i = 0; i < 5; ++i) {
    sup.submit("late-" + std::to_string(i), static_cast<std::uint64_t>(i),
               [&runs](const CancelToken&, std::uint32_t) { runs++; });
  }
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(report.skipped, 5u);
  EXPECT_TRUE(report.stopped);
  EXPECT_FALSE(report.all_completed());
}

TEST(SupervisorTest, StopPollTriggersStop) {
  std::atomic<bool> flag{false};
  SupervisorConfig config = test_config(0);
  config.stop_poll = [&flag] { return flag.load(); };
  Supervisor sup(2, config);
  std::atomic<int> runs{0};
  sup.submit("first", 1, [&](const CancelToken&, std::uint32_t) {
    runs++;
    flag.store(true);  // "signal" arrives while this job runs
    // Give the monitor a tick to observe the poll before returning.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  const SupervisorReport report = sup.wait();
  EXPECT_GE(runs.load(), 1);
  EXPECT_TRUE(report.stopped);
}

TEST(SupervisorTest, NoAttemptsAfterStop) {
  // A job dispatched after a stop must not run or burn its retry budget:
  // it is skipped before the first attempt.
  SupervisorConfig config = test_config(100);
  config.backoff_base_ms = 1;
  Supervisor sup(2, config);
  sup.request_stop();
  std::atomic<int> attempts{0};
  sup.submit("fail", 1, [&attempts](const CancelToken&, std::uint32_t) {
    attempts++;
    throw std::runtime_error("fails forever");
  });
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(attempts.load(), 0);  // skipped before the first attempt
  EXPECT_EQ(report.skipped, 1u);
}

TEST(SupervisorTest, ReusableAfterWait) {
  Supervisor sup(2, test_config(1));
  std::atomic<int> runs{0};
  sup.submit("a", 1, [&](const CancelToken&, std::uint32_t) { runs++; });
  EXPECT_EQ(sup.wait().completed, 1u);
  sup.submit("b", 2, [&](const CancelToken&, std::uint32_t) { runs++; });
  const SupervisorReport report = sup.wait();
  EXPECT_EQ(report.completed, 1u);  // the report reset between waits
  EXPECT_EQ(runs.load(), 2);
}

TEST(CancelTokenTest, CancelAndResetRoundTrip) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace spcd::util
