#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spcd::util {
namespace {

TEST(EnvTest, U64FallbackWhenUnset) {
  ::unsetenv("SPCD_TEST_ENV_U64");
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
}

TEST(EnvTest, U64ParsesValue) {
  ::setenv("SPCD_TEST_ENV_U64", "1234", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 1234u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, U64RejectsGarbage) {
  ::setenv("SPCD_TEST_ENV_U64", "12abc", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
  ::setenv("SPCD_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, DoubleParsesValue) {
  ::setenv("SPCD_TEST_ENV_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("SPCD_TEST_ENV_D", 1.0), 0.25);
  ::unsetenv("SPCD_TEST_ENV_D");
}

TEST(EnvTest, DoubleRejectsGarbage) {
  ::setenv("SPCD_TEST_ENV_D", "abc", 1);
  EXPECT_DOUBLE_EQ(env_double("SPCD_TEST_ENV_D", 1.5), 1.5);
  ::unsetenv("SPCD_TEST_ENV_D");
}

TEST(EnvTest, U64ClampedClampsOutOfRangeValues) {
  ::setenv("SPCD_TEST_ENV_U64", "0", 1);
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 10, 1, 1024), 1u);
  ::setenv("SPCD_TEST_ENV_U64", "5000", 1);
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 10, 1, 1024), 1024u);
  ::setenv("SPCD_TEST_ENV_U64", "7", 1);
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 10, 1, 1024), 7u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, U64ClampedRejectsNegativeAndMalformed) {
  // strtoull would silently wrap "-3" to 2^64-3; the knob must not.
  ::setenv("SPCD_TEST_ENV_U64", "-3", 1);
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 10, 1, 1024), 10u);
  ::setenv("SPCD_TEST_ENV_U64", "abc", 1);
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 10, 1, 1024), 10u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, U64ClampedUnsetKeepsSentinelFallback) {
  // An unset variable returns the fallback untouched even when it lies
  // outside [lo, hi] — 0 is the "not configured" sentinel for SPCD_JOBS.
  ::unsetenv("SPCD_TEST_ENV_U64");
  EXPECT_EQ(env_u64_clamped("SPCD_TEST_ENV_U64", 0, 1, 1024), 0u);
}

TEST(EnvTest, DoubleClampedClampsAndRejects) {
  ::setenv("SPCD_TEST_ENV_D", "-2.5", 1);
  EXPECT_DOUBLE_EQ(env_double_clamped("SPCD_TEST_ENV_D", 1.0, 1e-4, 1e3),
                   1e-4);
  ::setenv("SPCD_TEST_ENV_D", "1e9", 1);
  EXPECT_DOUBLE_EQ(env_double_clamped("SPCD_TEST_ENV_D", 1.0, 1e-4, 1e3),
                   1e3);
  ::setenv("SPCD_TEST_ENV_D", "nan", 1);
  EXPECT_DOUBLE_EQ(env_double_clamped("SPCD_TEST_ENV_D", 1.0, 1e-4, 1e3),
                   1.0);
  ::setenv("SPCD_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_double_clamped("SPCD_TEST_ENV_D", 1.0, 1e-4, 1e3),
                   1.0);
  ::setenv("SPCD_TEST_ENV_D", "0.5", 1);
  EXPECT_DOUBLE_EQ(env_double_clamped("SPCD_TEST_ENV_D", 1.0, 1e-4, 1e3),
                   0.5);
  ::unsetenv("SPCD_TEST_ENV_D");
}

TEST(EnvTest, StringFallbackAndValue) {
  ::unsetenv("SPCD_TEST_ENV_S");
  EXPECT_EQ(env_string("SPCD_TEST_ENV_S", "dft"), "dft");
  ::setenv("SPCD_TEST_ENV_S", "hello", 1);
  EXPECT_EQ(env_string("SPCD_TEST_ENV_S", "dft"), "hello");
  ::unsetenv("SPCD_TEST_ENV_S");
}

}  // namespace
}  // namespace spcd::util
