#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spcd::util {
namespace {

TEST(EnvTest, U64FallbackWhenUnset) {
  ::unsetenv("SPCD_TEST_ENV_U64");
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
}

TEST(EnvTest, U64ParsesValue) {
  ::setenv("SPCD_TEST_ENV_U64", "1234", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 1234u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, U64RejectsGarbage) {
  ::setenv("SPCD_TEST_ENV_U64", "12abc", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
  ::setenv("SPCD_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("SPCD_TEST_ENV_U64", 7), 7u);
  ::unsetenv("SPCD_TEST_ENV_U64");
}

TEST(EnvTest, DoubleParsesValue) {
  ::setenv("SPCD_TEST_ENV_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("SPCD_TEST_ENV_D", 1.0), 0.25);
  ::unsetenv("SPCD_TEST_ENV_D");
}

TEST(EnvTest, DoubleRejectsGarbage) {
  ::setenv("SPCD_TEST_ENV_D", "abc", 1);
  EXPECT_DOUBLE_EQ(env_double("SPCD_TEST_ENV_D", 1.5), 1.5);
  ::unsetenv("SPCD_TEST_ENV_D");
}

TEST(EnvTest, StringFallbackAndValue) {
  ::unsetenv("SPCD_TEST_ENV_S");
  EXPECT_EQ(env_string("SPCD_TEST_ENV_S", "dft"), "dft");
  ::setenv("SPCD_TEST_ENV_S", "hello", 1);
  EXPECT_EQ(env_string("SPCD_TEST_ENV_S", "dft"), "hello");
  ::unsetenv("SPCD_TEST_ENV_S");
}

}  // namespace
}  // namespace spcd::util
