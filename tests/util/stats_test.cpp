#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace spcd::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, ShiftInvariantVariance) {
  RunningStats a, b;
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    a.add(x);
    b.add(x + 1e9);  // catastrophic for naive sum-of-squares
  }
  EXPECT_NEAR(a.variance(), b.variance(), 1e-6);
}

TEST(StudentTTest, KnownCriticalValues) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(9), 2.262, 1e-3);   // the paper's n=10 case
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_EQ(student_t_975(0), 0.0);
}

TEST(StudentTTest, DecreasesTowardNormal) {
  double prev = student_t_975(1);
  for (std::size_t dof = 2; dof <= 200; ++dof) {
    const double t = student_t_975(dof);
    EXPECT_LE(t, prev + 1e-9) << "dof=" << dof;
    prev = t;
  }
  EXPECT_NEAR(student_t_975(1000), 1.96, 0.01);
}

TEST(MeanCiTest, EmptySample) {
  const auto ci = mean_ci95({});
  EXPECT_EQ(ci.n, 0u);
  EXPECT_EQ(ci.mean, 0.0);
  EXPECT_EQ(ci.ci95, 0.0);
}

TEST(MeanCiTest, IdenticalSamplesHaveZeroWidth) {
  std::vector<double> s(10, 3.5);
  const auto ci = mean_ci95(s);
  EXPECT_DOUBLE_EQ(ci.mean, 3.5);
  EXPECT_DOUBLE_EQ(ci.ci95, 0.0);
}

TEST(MeanCiTest, TenSamplesMatchHandComputation) {
  // mean 5.5, sd = sqrt(sum (x-5.5)^2 / 9); 1..10 -> var = 82.5/9
  std::vector<double> s{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto ci = mean_ci95(s);
  EXPECT_DOUBLE_EQ(ci.mean, 5.5);
  const double sd = std::sqrt(82.5 / 9.0);
  EXPECT_NEAR(ci.ci95, 2.262 * sd / std::sqrt(10.0), 1e-3);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAnticorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSampleGivesZero) {
  std::vector<double> a{1, 1, 1, 1};
  std::vector<double> b{1, 2, 3, 4};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(PearsonTest, IndependentStreamsNearZero) {
  Xoshiro256 ra(1), rb(2);
  std::vector<double> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = ra.uniform();
    b[i] = rb.uniform();
  }
  EXPECT_NEAR(pearson(a, b), 0.0, 0.05);
}

TEST(MeanOfTest, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  std::vector<double> v{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

TEST(GeomeanTest, Basics) {
  EXPECT_EQ(geomean_of({}), 0.0);
  std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean_of(v), 2.0);
  std::vector<double> same{3.0, 3.0, 3.0};
  EXPECT_NEAR(geomean_of(same), 3.0, 1e-12);
}

}  // namespace
}  // namespace spcd::util
