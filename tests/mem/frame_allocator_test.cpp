#include "mem/frame_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spcd::mem {
namespace {

TEST(FrameAllocatorTest, FramesAreUnique) {
  FrameAllocator fa(2);
  std::set<std::uint64_t> frames;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(frames.insert(fa.allocate(0)).second);
    EXPECT_TRUE(frames.insert(fa.allocate(1)).second);
  }
}

TEST(FrameAllocatorTest, NodeOfRoundTrips) {
  FrameAllocator fa(4);
  for (std::uint32_t node = 0; node < 4; ++node) {
    const auto f = fa.allocate(node);
    EXPECT_EQ(FrameAllocator::node_of(f), node);
  }
}

TEST(FrameAllocatorTest, PerNodeCounting) {
  FrameAllocator fa(2);
  fa.allocate(0);
  fa.allocate(0);
  fa.allocate(1);
  EXPECT_EQ(fa.allocated_on(0), 2u);
  EXPECT_EQ(fa.allocated_on(1), 1u);
  EXPECT_EQ(fa.total_allocated(), 3u);
}

TEST(FrameAllocatorTest, SingleNode) {
  FrameAllocator fa(1);
  const auto f0 = fa.allocate(0);
  const auto f1 = fa.allocate(0);
  EXPECT_NE(f0, f1);
  EXPECT_EQ(FrameAllocator::node_of(f0), 0u);
}

TEST(FrameAllocatorDeathTest, BadNodeAborts) {
  FrameAllocator fa(2);
  EXPECT_DEATH((void)fa.allocate(2), "Precondition");
}

TEST(FrameAllocatorDeathTest, ZeroNodesAborts) {
  EXPECT_DEATH(FrameAllocator fa(0), "Precondition");
}

}  // namespace
}  // namespace spcd::mem
