#include "mem/address_space.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spcd::mem {
namespace {

class RecordingObserver : public FaultObserver {
 public:
  util::Cycles on_fault(const FaultEvent& event) override {
    events.push_back(event);
    return cost;
  }
  std::vector<FaultEvent> events;
  util::Cycles cost = 0;
};

class AddressSpaceTest : public ::testing::Test {
 protected:
  FrameAllocator frames_{2};
  AddressSpace as_{frames_, 12};
};

TEST_F(AddressSpaceTest, FirstTouchFaultsAndAllocates) {
  const auto t = as_.translate(0x1000, /*tid=*/3, /*ctx=*/5,
                               /*touch_node=*/1, /*now=*/100);
  ASSERT_TRUE(t.fault.has_value());
  EXPECT_EQ(*t.fault, FaultKind::kFirstTouch);
  EXPECT_EQ(FrameAllocator::node_of(t.frame), 1u);
  EXPECT_EQ(as_.minor_faults(), 1u);
  EXPECT_EQ(as_.injected_faults(), 0u);
}

TEST_F(AddressSpaceTest, SecondAccessNoFault) {
  (void)as_.translate(0x1000, 0, 0, 0, 0);
  const auto t = as_.translate(0x1234, 1, 1, 1, 10);  // same page
  EXPECT_FALSE(t.fault.has_value());
  EXPECT_EQ(as_.minor_faults(), 1u);
}

TEST_F(AddressSpaceTest, SamePageDifferentOffsetsShareFrame) {
  const auto a = as_.translate(0x2000, 0, 0, 0, 0);
  const auto b = as_.translate(0x2ff8, 0, 0, 0, 1);
  EXPECT_EQ(a.frame, b.frame);
}

TEST_F(AddressSpaceTest, DifferentPagesGetDifferentFrames) {
  const auto a = as_.translate(0x2000, 0, 0, 0, 0);
  const auto b = as_.translate(0x3000, 0, 0, 0, 1);
  EXPECT_NE(a.frame, b.frame);
}

TEST_F(AddressSpaceTest, ClearPresentCausesInjectedFault) {
  const auto first = as_.translate(0x5000, 0, 0, 0, 0);
  ASSERT_TRUE(as_.clear_present(as_.vpn_of(0x5000)));
  const auto again = as_.translate(0x5008, 7, 2, 1, 50);
  ASSERT_TRUE(again.fault.has_value());
  EXPECT_EQ(*again.fault, FaultKind::kInjected);
  EXPECT_EQ(again.frame, first.frame);  // frame retained, no realloc
  EXPECT_EQ(as_.injected_faults(), 1u);
  EXPECT_EQ(as_.minor_faults(), 1u);
}

TEST_F(AddressSpaceTest, ClearPresentOnUntouchedPageFails) {
  EXPECT_FALSE(as_.clear_present(123));
}

TEST_F(AddressSpaceTest, ObserverSeesFullAddressAndThread) {
  RecordingObserver obs;
  as_.add_fault_observer(&obs);
  (void)as_.translate(0x7abc, /*tid=*/9, /*ctx=*/4, 0, /*now=*/777);
  ASSERT_EQ(obs.events.size(), 1u);
  const auto& e = obs.events[0];
  EXPECT_EQ(e.vaddr, 0x7abcu);  // full address, not page-aligned
  EXPECT_EQ(e.vpn, 0x7u);
  EXPECT_EQ(e.tid, 9u);
  EXPECT_EQ(e.ctx, 4u);
  EXPECT_EQ(e.time, 777u);
  EXPECT_EQ(e.kind, FaultKind::kFirstTouch);
}

TEST_F(AddressSpaceTest, ObserverCostIsCharged) {
  RecordingObserver obs;
  obs.cost = 250;
  as_.add_fault_observer(&obs);
  const auto t = as_.translate(0x9000, 0, 0, 0, 0);
  EXPECT_EQ(t.observer_cycles, 250u);
  // No fault on the second access -> no observer cost.
  const auto t2 = as_.translate(0x9000, 0, 0, 0, 1);
  EXPECT_EQ(t2.observer_cycles, 0u);
}

TEST_F(AddressSpaceTest, MultipleObserversAllNotified) {
  RecordingObserver a, b;
  a.cost = 10;
  b.cost = 20;
  as_.add_fault_observer(&a);
  as_.add_fault_observer(&b);
  const auto t = as_.translate(0x4000, 0, 0, 0, 0);
  EXPECT_EQ(t.observer_cycles, 30u);
  EXPECT_EQ(a.events.size(), 1u);
  EXPECT_EQ(b.events.size(), 1u);
}

TEST_F(AddressSpaceTest, RemoveObserverStopsNotifications) {
  RecordingObserver obs;
  as_.add_fault_observer(&obs);
  as_.remove_fault_observer(&obs);
  (void)as_.translate(0x4000, 0, 0, 0, 0);
  EXPECT_TRUE(obs.events.empty());
}

TEST_F(AddressSpaceTest, ResidentVpnsTrackMappedPages) {
  (void)as_.translate(0x1000, 0, 0, 0, 0);
  (void)as_.translate(0x3000, 0, 0, 0, 0);
  (void)as_.translate(0x1500, 0, 0, 0, 0);  // same page as first
  const auto& resident = as_.resident_vpns();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0], 1u);
  EXPECT_EQ(resident[1], 3u);
}

TEST_F(AddressSpaceTest, InjectedFaultObserverKindIsInjected) {
  RecordingObserver obs;
  (void)as_.translate(0x8000, 0, 0, 0, 0);
  as_.add_fault_observer(&obs);
  as_.clear_present(8);
  (void)as_.translate(0x8000, 2, 1, 0, 99);
  ASSERT_EQ(obs.events.size(), 1u);
  EXPECT_EQ(obs.events[0].kind, FaultKind::kInjected);
  EXPECT_EQ(obs.events[0].tid, 2u);
}

TEST_F(AddressSpaceTest, FirstTouchPolicyPlacesOnTouchNode) {
  const auto a = as_.translate(0x10000, 0, 0, /*touch_node=*/0, 0);
  const auto b = as_.translate(0x20000, 0, 0, /*touch_node=*/1, 0);
  EXPECT_EQ(FrameAllocator::node_of(a.frame), 0u);
  EXPECT_EQ(FrameAllocator::node_of(b.frame), 1u);
  EXPECT_EQ(frames_.allocated_on(0), 1u);
  EXPECT_EQ(frames_.allocated_on(1), 1u);
}

}  // namespace
}  // namespace spcd::mem
