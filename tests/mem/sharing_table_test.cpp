#include "mem/sharing_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace spcd::mem {
namespace {

SharingTableConfig small_config() {
  SharingTableConfig c;
  c.num_entries = 64;
  c.granularity_shift = 12;
  return c;
}

std::vector<std::uint32_t> partners_of(const CommunicationEvent& e) {
  std::vector<std::uint32_t> v(e.partners, e.partners + e.partner_count);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SharingTableTest, FirstAccessHasNoPartners) {
  SharingTable st(small_config());
  const auto e = st.record_access(0x1000, 0, 10);
  EXPECT_EQ(e.partner_count, 0u);
}

TEST(SharingTableTest, SecondThreadCommunicatesWithFirst) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 10);
  const auto e = st.record_access(0x1800, 1, 20);  // same 4K region
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{0}));
}

TEST(SharingTableTest, SameThreadRepeatNoSelfCommunication) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 10);
  const auto e = st.record_access(0x1000, 0, 20);
  EXPECT_EQ(e.partner_count, 0u);
}

TEST(SharingTableTest, ThirdThreadSeesBothSharers) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  const auto e = st.record_access(0x1000, 2, 30);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{0, 1}));
}

TEST(SharingTableTest, DifferentRegionsDoNotCommunicate) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 10);
  const auto e = st.record_access(0x2000, 1, 20);  // next 4K region
  EXPECT_EQ(e.partner_count, 0u);
}

TEST(SharingTableTest, GranularityControlsRegionSize) {
  SharingTableConfig c = small_config();
  c.granularity_shift = 6;  // cache-line granularity
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  // Same page, different 64-byte region: no communication detected.
  const auto e1 = st.record_access(0x1040, 1, 20);
  EXPECT_EQ(e1.partner_count, 0u);
  // Same 64-byte region: communication.
  const auto e2 = st.record_access(0x1004, 2, 30);
  EXPECT_EQ(partners_of(e2), (std::vector<std::uint32_t>{0}));
}

TEST(SharingTableTest, TemporalWindowSuppressesStaleSharing) {
  SharingTableConfig c = small_config();
  c.time_window = 100;
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  // 200 cycles later: outside the window -> temporal false communication
  // suppressed (paper SIII-C2).
  const auto stale = st.record_access(0x1000, 1, 210);
  EXPECT_EQ(stale.partner_count, 0u);
  EXPECT_EQ(st.window_rejects(), 1u);
  // Thread 1's stamp is now fresh; a quick follow-up from thread 0 counts.
  const auto fresh = st.record_access(0x1000, 0, 250);
  EXPECT_EQ(partners_of(fresh), (std::vector<std::uint32_t>{1}));
}

TEST(SharingTableTest, ZeroWindowDisablesTemporalFilter) {
  SharingTable st(small_config());  // time_window = 0
  st.record_access(0x1000, 0, 0);
  const auto e = st.record_access(0x1000, 1, 1000000000ULL);
  EXPECT_EQ(e.partner_count, 1u);
  EXPECT_EQ(st.window_rejects(), 0u);
}

TEST(SharingTableTest, CollisionOverwriteDropsOldRegion) {
  SharingTableConfig c = small_config();
  c.num_entries = 1;  // everything collides
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  st.record_access(0x2000, 1, 20);  // overwrites region of 0x1000
  EXPECT_EQ(st.collisions(), 1u);
  // Back to the first region: the entry was lost, so no partners.
  const auto e = st.record_access(0x1000, 2, 30);
  EXPECT_EQ(e.partner_count, 0u);
}

TEST(SharingTableTest, CollisionChainKeepsBothRegions) {
  SharingTableConfig c = small_config();
  c.num_entries = 1;
  c.collision_policy = CollisionPolicy::kChain;
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  st.record_access(0x2000, 1, 20);
  const auto e = st.record_access(0x1000, 2, 30);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{0}));
}

TEST(SharingTableTest, SharerListEvictsOldestWhenFull) {
  SharingTableConfig c = small_config();
  c.max_sharers = 2;
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  // Thread 2 arrives; list is full -> evict thread 0 (oldest stamp).
  const auto e2 = st.record_access(0x1000, 2, 30);
  EXPECT_EQ(partners_of(e2), (std::vector<std::uint32_t>{0, 1}));
  // Now sharers = {1, 2}; thread 3 communicates with those two only.
  const auto e3 = st.record_access(0x1000, 3, 40);
  EXPECT_EQ(partners_of(e3), (std::vector<std::uint32_t>{1, 2}));
}

TEST(SharingTableTest, OccupancyAndAccessCounters) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 1);
  st.record_access(0x2000, 0, 2);
  st.record_access(0x1000, 1, 3);
  EXPECT_EQ(st.accesses(), 3u);
  EXPECT_EQ(st.occupied(), 2u);
}

TEST(SharingTableTest, ClearResetsEverything) {
  SharingTable st(small_config());
  st.record_access(0x1000, 0, 1);
  st.record_access(0x1000, 1, 2);
  st.clear();
  EXPECT_EQ(st.accesses(), 0u);
  EXPECT_EQ(st.occupied(), 0u);
  const auto e = st.record_access(0x1000, 2, 3);
  EXPECT_EQ(e.partner_count, 0u);
}

TEST(SharingTableTest, PaperSizedTableMemoryFootprint) {
  SharingTableConfig c;  // 256,000 entries, like Table I
  SharingTable st(c);
  // The paper reports 18 MiB; our entry layout should be the same order of
  // magnitude (tens of MiB, not hundreds).
  EXPECT_GT(st.memory_bytes(), 10ull * 1024 * 1024);
  EXPECT_LT(st.memory_bytes(), 64ull * 1024 * 1024);
}

TEST(SharingTableTest, ManyRegionsLowCollisionRate) {
  SharingTableConfig c;
  c.num_entries = 256000;
  SharingTable st(c);
  // 10,000 distinct regions in a 256,000-entry table: collisions exist but
  // must be rare (< 5%).
  for (std::uint64_t r = 0; r < 10000; ++r) {
    st.record_access(r << 12, 0, r);
  }
  EXPECT_LT(st.collisions(), 500u);
}

// --- admission guard (adversarial hardening, DESIGN.md §13) ---

SharingTableConfig guarded_config() {
  SharingTableConfig c;
  c.num_entries = 1;  // every region collides into the one bucket
  c.granularity_shift = 12;
  c.guard_admission = true;
  c.admission_max_refusals = 3;
  return c;
}

TEST(SharingTableTest, AdmissionGuardProtectsEstablishedEntries) {
  SharingTable st(guarded_config());
  // Establish region 0x1000 with two sharers: now "established".
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  // A colliding region must knock max_refusals times before admission.
  // After two knocks the established entry is still fully intact: a third
  // sharer sees both originals (this touch also re-arms the guard).
  st.record_access(0x2000, 2, 31);
  st.record_access(0x2000, 2, 32);
  EXPECT_EQ(st.admissions_refused(), 2u);
  const auto e = st.record_access(0x1000, 3, 40);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{0, 1}));
  // Three fresh knocks wear the re-armed guard down...
  for (std::uint64_t knock = 1; knock <= 3; ++knock) {
    const auto refused = st.record_access(0x2000, 2, 50 + knock);
    EXPECT_EQ(refused.partner_count, 0u);
    EXPECT_EQ(st.admissions_refused(), 2 + knock);
  }
  // ...and the next one wins the bucket.
  st.record_access(0x2000, 2, 60);
  const auto after = st.record_access(0x2000, 4, 70);
  EXPECT_EQ(partners_of(after), (std::vector<std::uint32_t>{2}));
}

TEST(SharingTableTest, AdmissionGuardIgnoresSingleSharerEntries) {
  SharingTable st(guarded_config());
  st.record_access(0x1000, 0, 10);  // only one sharer: not established
  st.record_access(0x2000, 1, 20);  // overwrites immediately
  EXPECT_EQ(st.admissions_refused(), 0u);
  const auto e = st.record_access(0x2000, 2, 30);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{1}));
}

TEST(SharingTableTest, OwnRegionTouchReArmsTheGuard) {
  SharingTable st(guarded_config());
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  st.record_access(0x2000, 2, 30);  // knock 1
  st.record_access(0x2000, 2, 31);  // knock 2
  st.record_access(0x1000, 0, 40);  // entry's own region: refusals reset
  // The flooder needs three fresh knocks again.
  st.record_access(0x2000, 2, 50);
  st.record_access(0x2000, 2, 51);
  st.record_access(0x2000, 2, 52);
  const auto still = st.record_access(0x1000, 3, 60);
  EXPECT_EQ(partners_of(still), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(st.admissions_refused(), 5u);
}

TEST(SharingTableTest, SuspectThreadsAreRefusedOutright) {
  SharingTable st(guarded_config());
  const std::uint8_t suspects[4] = {0, 0, 0, 1};  // tid 3 flagged
  st.set_suspects(suspects, 4);
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  // A suspect never wears the guard down, no matter how often it knocks.
  for (std::uint64_t knock = 0; knock < 16; ++knock) {
    const auto e = st.record_access(0x2000, 3, 30 + knock);
    EXPECT_EQ(e.partner_count, 0u);
  }
  EXPECT_EQ(st.admissions_refused(), 16u);
  const auto e = st.record_access(0x1000, 2, 100);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{0, 1}));
}

TEST(SharingTableTest, GuardOffKeepsPaperOverwriteBehavior) {
  SharingTableConfig c = guarded_config();
  c.guard_admission = false;
  SharingTable st(c);
  st.record_access(0x1000, 0, 10);
  st.record_access(0x1000, 1, 20);
  st.record_access(0x2000, 2, 30);  // overwrites immediately (the paper)
  EXPECT_EQ(st.admissions_refused(), 0u);
  const auto e = st.record_access(0x2000, 3, 40);
  EXPECT_EQ(partners_of(e), (std::vector<std::uint32_t>{2}));
}

TEST(SharingTableDeathTest, InvalidConfigAborts) {
  SharingTableConfig c;
  c.num_entries = 0;
  EXPECT_DEATH(SharingTable st(c), "Precondition");
  SharingTableConfig c2;
  c2.max_sharers = 100;
  EXPECT_DEATH(SharingTable st2(c2), "Precondition");
}

}  // namespace
}  // namespace spcd::mem
