#include "mem/tlb.hpp"

#include <gtest/gtest.h>

namespace spcd::mem {
namespace {

arch::TlbSpec small_spec() {
  return arch::TlbSpec{.entries = 8, .associativity = 2};
}

TEST(TlbTest, MissThenHit) {
  Tlb tlb(small_spec());
  EXPECT_FALSE(tlb.probe(5));
  tlb.insert(5);
  EXPECT_TRUE(tlb.probe(5));
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb(small_spec());  // 4 sets, 2 ways; vpns 0,4,8 share set 0
  tlb.insert(0);
  tlb.insert(4);
  EXPECT_TRUE(tlb.probe(0));  // refresh 0; 4 becomes LRU
  tlb.insert(8);              // evicts 4
  EXPECT_TRUE(tlb.probe(0));
  EXPECT_TRUE(tlb.probe(8));
  EXPECT_FALSE(tlb.probe(4));
}

TEST(TlbTest, DifferentSetsDoNotInterfere) {
  Tlb tlb(small_spec());
  tlb.insert(0);
  tlb.insert(1);
  tlb.insert(2);
  tlb.insert(3);
  EXPECT_TRUE(tlb.probe(0));
  EXPECT_TRUE(tlb.probe(1));
  EXPECT_TRUE(tlb.probe(2));
  EXPECT_TRUE(tlb.probe(3));
}

TEST(TlbTest, InvalidateRemovesOnlyTarget) {
  Tlb tlb(small_spec());
  tlb.insert(0);
  tlb.insert(4);
  EXPECT_TRUE(tlb.invalidate(0));
  EXPECT_FALSE(tlb.probe(0));
  EXPECT_TRUE(tlb.probe(4));
}

TEST(TlbTest, InvalidateMissingReturnsFalse) {
  Tlb tlb(small_spec());
  EXPECT_FALSE(tlb.invalidate(123));
}

TEST(TlbTest, FlushDropsEverything) {
  Tlb tlb(small_spec());
  for (std::uint64_t v = 0; v < 8; ++v) tlb.insert(v);
  tlb.flush();
  for (std::uint64_t v = 0; v < 8; ++v) EXPECT_FALSE(tlb.probe(v));
}

TEST(TlbTest, ReinsertAfterInvalidateWorks) {
  Tlb tlb(small_spec());
  tlb.insert(9);
  tlb.invalidate(9);
  tlb.insert(9);
  EXPECT_TRUE(tlb.probe(9));
}

TEST(TlbTest, FullyAssociativeDegenerateCase) {
  Tlb tlb(arch::TlbSpec{.entries = 4, .associativity = 4});  // 1 set
  tlb.insert(10);
  tlb.insert(20);
  tlb.insert(30);
  tlb.insert(40);
  EXPECT_TRUE(tlb.probe(10));  // refresh -> 20 is LRU
  tlb.insert(50);
  EXPECT_FALSE(tlb.probe(20));
  EXPECT_TRUE(tlb.probe(10));
  EXPECT_TRUE(tlb.probe(50));
}

TEST(TlbDeathTest, NonDividingGeometryAborts) {
  EXPECT_DEATH(Tlb(arch::TlbSpec{.entries = 10, .associativity = 4}),
               "Precondition");
}

}  // namespace
}  // namespace spcd::mem
