#include "mem/page_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spcd::mem {
namespace {

TEST(PageTableTest, UnmappedWalkReturnsNull) {
  PageTable pt;
  EXPECT_EQ(pt.walk(0), nullptr);
  EXPECT_EQ(pt.walk(12345), nullptr);
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTableTest, MapThenWalk) {
  PageTable pt;
  pt.map(42, 1000);
  const Pte* e = pt.walk(42);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(pte::is_present(*e));
  EXPECT_TRUE(pte::is_mapped(*e));
  EXPECT_EQ(pte::frame_of(*e), 1000u);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTableTest, NeighborVpnsAreIndependent) {
  PageTable pt;
  pt.map(100, 1);
  EXPECT_EQ(pt.walk(99), nullptr);
  EXPECT_EQ(pt.walk(101), nullptr);
}

TEST(PageTableTest, SparseVpnsAcrossAllLevels) {
  PageTable pt;
  // Indices chosen so every radix level differs.
  const std::uint64_t vpns[] = {0ULL, 1ULL << 9, 1ULL << 18, 1ULL << 27,
                                (1ULL << 36) - 1};
  std::uint64_t frame = 1;
  for (auto v : vpns) pt.map(v, frame++);
  frame = 1;
  for (auto v : vpns) {
    const Pte* e = pt.walk(v);
    ASSERT_NE(e, nullptr) << "vpn " << v;
    EXPECT_EQ(pte::frame_of(*e), frame++);
  }
}

TEST(PageTableTest, ClearPresentThenWalkShowsNotPresent) {
  PageTable pt;
  pt.map(7, 77);
  EXPECT_TRUE(pt.clear_present(7));
  const Pte* e = pt.walk(7);  // still mapped, but not present
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(pte::is_present(*e));
  EXPECT_TRUE(pte::is_spcd_cleared(*e));
  EXPECT_EQ(pte::frame_of(*e), 77u);  // frame is retained
}

TEST(PageTableTest, ClearPresentOnUnmappedFails) {
  PageTable pt;
  EXPECT_FALSE(pt.clear_present(3));
}

TEST(PageTableTest, ClearPresentTwiceFails) {
  PageTable pt;
  pt.map(9, 1);
  EXPECT_TRUE(pt.clear_present(9));
  EXPECT_FALSE(pt.clear_present(9));  // already non-present
}

TEST(PageTableTest, RestorePresentReportsInjected) {
  PageTable pt;
  pt.map(5, 50);
  ASSERT_TRUE(pt.clear_present(5));
  EXPECT_TRUE(pt.restore_present(5));
  const Pte* e = pt.walk(5);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(pte::is_present(*e));
  EXPECT_FALSE(pte::is_spcd_cleared(*e));
}

TEST(PageTableTest, RestoreOnAlreadyPresentIsNotInjected) {
  PageTable pt;
  pt.map(5, 50);
  EXPECT_FALSE(pt.restore_present(5));
}

TEST(PageTableTest, NodeCountGrowsLazily) {
  PageTable pt;
  const auto initial = pt.node_count();
  pt.map(0, 1);
  const auto after_one = pt.node_count();
  EXPECT_GT(after_one, initial);
  pt.map(1, 2);  // same leaf
  EXPECT_EQ(pt.node_count(), after_one);
  pt.map(1ULL << 30, 3);  // far away: new subtree
  EXPECT_GT(pt.node_count(), after_one);
}

TEST(PageTableTest, ManyRandomPagesRoundTrip) {
  PageTable pt;
  util::Xoshiro256 rng(1234);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pages;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t vpn = rng.below(1ULL << 36);
    if (pt.walk(vpn) != nullptr) continue;
    const std::uint64_t frame = rng.below(1ULL << 40);
    pt.map(vpn, frame);
    pages.emplace_back(vpn, frame);
  }
  for (const auto& [vpn, frame] : pages) {
    const Pte* e = pt.walk(vpn);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(pte::frame_of(*e), frame);
  }
  EXPECT_EQ(pt.mapped_pages(), pages.size());
}

TEST(PageTableDeathTest, DoubleMapAborts) {
  PageTable pt;
  pt.map(1, 1);
  EXPECT_DEATH(pt.map(1, 2), "Precondition");
}

TEST(PageTableDeathTest, RestoreUnmappedAborts) {
  PageTable pt;
  EXPECT_DEATH((void)pt.restore_present(1), "Precondition");
}

}  // namespace
}  // namespace spcd::mem
